//! The default sparse-CGS sampling kernel (§6.1, Algorithm 2).
//!
//! [`SparseCgsSampler`] is the default [`SamplerKernel`] implementation: the
//! paper's exact S/Q-split collapsed Gibbs kernel.  One thread block samples
//! the tokens of one word (or a slice of a heavy word's tokens).  The block
//! first computes the shared quantities that depend only on the word:
//!
//! * the reused sub-expression `p*(k) = (φ[k,v] + β) / (n_k + βV)` (§6.1.3),
//!   stored in shared memory;
//! * the dense part `p2(k) = α · p*(k)`, its sum `Q`, and its 32-way index
//!   tree (§6.1.1), also in shared memory.
//!
//! Each sampler (warp) then processes its tokens: it reads the document's
//! sparse θ row, forms the sparse part `p1(k) = θ_{d,k} · p*(k)` and its sum
//! `S`, draws `u ~ U(0, S + Q)` and samples from `p1` (tree over the `K_d`
//! non-zeros) when `u < S`, from the shared `p2` tree otherwise.  The new
//! topic is written to `z_next`; counts are folded in by the update kernels.

use crate::config::LdaConfig;
use crate::kernels::sampler::{SamplerKernel, BURN_STREAM_BASE};
use crate::model::ChunkState;
use crate::work::WorkItem;
use culda_gpusim::rng::stable_f32;
use culda_gpusim::{BlockCtx, BlockKernel};
use culda_sparse::prefix::search_prefix;
use culda_sparse::{DenseMatrix, IndexTree};
use std::sync::atomic::Ordering;

/// The paper's exact S/Q-split collapsed Gibbs sampler — the default
/// [`SamplerKernel`] implementation ([`crate::SamplerStrategy::SparseCgs`]).
///
/// Stateless: the per-word shared structures (p*(k), the p2 index tree) are
/// rebuilt inside every block, every iteration, exactly as §6.1 describes —
/// which is precisely the `O(K)` per-word cost the alias-hybrid strategy
/// amortises away.
pub struct SparseCgsSampler;

impl SamplerKernel for SparseCgsSampler {
    fn name(&self) -> &'static str {
        crate::kernels::names::SAMPLING
    }

    fn sampling_kernel<'a>(
        &'a self,
        state: &'a ChunkState,
        items: &'a [WorkItem],
        config: &'a LdaConfig,
        iteration: u64,
    ) -> Box<dyn BlockKernel + 'a> {
        Box::new(SparseCgsBlock {
            state,
            items,
            config,
            iteration,
        })
    }

    /// Exact document-major collapsed Gibbs: the full conditional
    /// `(θ_{d,k} + α)(φ_{k,w} + β)/(n_k + βV)` is evaluated fresh for every
    /// token and sampled by inverse CDF from one counter-based draw keyed by
    /// `(uid, slot)`.
    fn burn_in_sweep(
        &self,
        config: &LdaConfig,
        uid: u64,
        sweep: usize,
        words: &[u32],
        z: &mut [u16],
        theta_d: &mut [u32],
        phi: &mut DenseMatrix<u32>,
        nk: &mut [i64],
    ) {
        let k = config.num_topics;
        let alpha = config.alpha;
        let beta = config.beta;
        let stream = BURN_STREAM_BASE - sweep as u64;
        let v_beta = beta * phi.cols() as f64;
        let mut weights = vec![0.0f64; k];
        for (slot, &w) in words.iter().enumerate() {
            let w = w as usize;
            let c = z[slot] as usize;
            theta_d[c] -= 1;
            *phi.get_mut(c, w) -= 1;
            nk[c] -= 1;
            let mut total = 0.0f64;
            for (topic, weight) in weights.iter_mut().enumerate() {
                total += (theta_d[topic] as f64 + alpha) * (phi.get(topic, w) as f64 + beta)
                    / (nk[topic] as f64 + v_beta);
                *weight = total;
            }
            let u = stable_f32(config.seed, stream, (uid << 32) | slot as u64) as f64 * total;
            let new_topic = weights.partition_point(|&cum| cum <= u).min(k - 1);
            z[slot] = new_topic as u16;
            theta_d[new_topic] += 1;
            *phi.get_mut(new_topic, w) += 1;
            nk[new_topic] += 1;
        }
    }
}

/// The per-launch block kernel of [`SparseCgsSampler`]: one chunk's work
/// items at one iteration.
pub struct SparseCgsBlock<'a> {
    /// Chunk being sampled.
    pub state: &'a ChunkState,
    /// Per-block work assignment (see [`crate::work::build_work_items`]).
    pub items: &'a [WorkItem],
    /// Run configuration.
    pub config: &'a LdaConfig,
    /// Training iteration number; tags each token's counter-based RNG stream
    /// so draws are bit-identical across runs and GPU topologies.
    pub iteration: u64,
}

impl SparseCgsBlock<'_> {
    /// Bytes of a compressed (or not) integer model element.
    #[inline]
    fn model_int_bytes(&self) -> u64 {
        if self.config.compress_16bit {
            2
        } else {
            4
        }
    }
}

impl BlockKernel for SparseCgsBlock<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let item = &self.items[block_id];
        if item.is_empty() {
            return;
        }
        let state = self.state;
        let cfg = self.config;
        let k = cfg.num_topics;
        let v = item.word as usize;
        let vocab = state.layout.vocab_size;
        let alpha = cfg.alpha as f32;
        let beta = cfg.beta as f32;
        let beta_v = (cfg.beta * vocab as f64) as f32;
        let int_bytes = self.model_int_bytes();

        // ---- Per-word shared state: p*(k), Q, and the p2 index tree. ----
        // Reading the φ column and n_k for the word: K compressed ints + K
        // 32-bit totals from global memory; 2 flops per topic to form p*.
        // The raw φ[·,v] and n_k values are kept so each token can remove its
        // own contribution (the n^{¬dv} correction of collapsed Gibbs).
        let mut phi_col = vec![0.0f32; k];
        let mut nk_vals = vec![0.0f32; k];
        let mut p_star = vec![0.0f32; k];
        for kk in 0..k {
            phi_col[kk] = state.phi_global.load(kk, v) as f32;
            nk_vals[kk] = state.nk_global.get(kk) as f32;
            p_star[kk] = (phi_col[kk] + beta) / (nk_vals[kk] + beta_v);
        }
        ctx.read_global(k as u64 * int_bytes); // φ[·, v]
        ctx.read_global(k as u64 * 4); // n_k
        ctx.flops(2 * k as u64);

        // p2(k) = α · p*(k); the tree over p2 is shared by every sampler in
        // the block (§6.1.2).  If shared memory cannot hold p* and the tree,
        // the structures spill and their traffic is charged to L1 instead.
        let p2: Vec<f32> = p_star.iter().map(|&x| alpha * x).collect();
        ctx.flops(k as u64);
        let p2_tree = IndexTree::with_fanout(cfg.tree_fanout, &p2);
        let q = p2_tree.total();

        let p_star_bytes = 4 * k as u64;
        let tree_bytes = p2_tree.shared_bytes() + p2_tree.leaf_bytes();
        // `in_shared`: the block-shared placement of §6.1.2.  When sharing is
        // disabled (the SaberLDA-style configuration and the ablation), the
        // per-token lookups fall back to off-chip memory; when sharing is
        // enabled but the structures exceed the block's shared budget, they
        // spill to the L1-cached path instead.
        let fits = ctx.shared_alloc(p_star_bytes) && ctx.shared_alloc(tree_bytes);
        let in_shared = cfg.share_p2_tree && fits;
        if in_shared {
            ctx.shared_traffic(p_star_bytes + tree_bytes); // construction writes
        } else if cfg.share_p2_tree {
            // Capacity spill: rebuilt per sampler through L1.
            ctx.read_l1(p_star_bytes + tree_bytes);
        } else {
            ctx.write_global(p_star_bytes + tree_bytes);
        }

        // ---- Per-token sampling. ----
        let theta = state.theta.read();
        let mut p1_prefix: Vec<f32> = Vec::with_capacity(64);
        for pos in item.start..item.end {
            let pos = pos as usize;
            let d = state.layout.token_doc[pos] as usize;
            ctx.read_global(4); // token → document index

            // The token's current assignment, so its own count can be
            // excluded from every distribution it is resampled from
            // (collapsed Gibbs samples from n^{¬dv}, Algorithm 2 line 4).
            let c = state.z[pos].load(Ordering::Relaxed) as usize;
            ctx.read_global(int_bytes); // current topic assignment
            let p_star_c =
                ((phi_col[c] - 1.0).max(0.0) + beta) / ((nk_vals[c] - 1.0).max(0.0) + beta_v);
            ctx.flops(2);

            let (cols, vals) = theta.row(d);
            let kd = cols.len();
            // Reading the CSR row: K_d (compressed column index + 32-bit
            // count) pairs plus the two row-pointer entries.
            ctx.read_global(kd as u64 * (int_bytes + 4) + 8);

            // p1(k) = θ_{d,k} · p*(k): one multiply and one add per non-zero,
            // with the p* lookups served from shared memory.  The current
            // topic's own count is excluded.
            p1_prefix.clear();
            let mut s = 0.0f32;
            for i in 0..kd {
                let kk = cols[i] as usize;
                let w = if kk == c {
                    (vals[i] as f32 - 1.0).max(0.0) * p_star_c
                } else {
                    vals[i] as f32 * p_star[kk]
                };
                s += w;
                p1_prefix.push(s);
            }
            ctx.flops(2 * kd as u64);
            if in_shared {
                ctx.shared_traffic(4 * kd as u64);
            } else if cfg.share_p2_tree {
                ctx.read_l1(4 * kd as u64);
            } else {
                ctx.read_global(4 * kd as u64);
            }

            // The dense part's mass with the current topic's self-count
            // removed: only the p2 leaf for topic `c` changes, so the shared
            // tree is reused and the draw is remapped around the removed
            // mass instead of rebuilding the tree per token.
            let p2_c_adj = alpha * p_star_c;
            let delta = p2[c] - p2_c_adj;
            let q_adj = (q - delta).max(0.0);
            let leaf_before_c = if c == 0 {
                0.0
            } else {
                p2_tree.leaf_prefix()[c - 1]
            };
            ctx.flops(3);

            // Draw u ~ U(0, S + Q) and pick the branch (Algorithm 2, line 6).
            // The draw is a pure function of (seed, iteration, token
            // identity): the same token gets the same randomness no matter
            // which block, device or topology samples it.
            let global_doc = (state.layout.range.start + d) as u64;
            let slot = state.token_slot[pos] as u64;
            let u =
                ctx.stable_f32(cfg.seed, self.iteration, (global_doc << 32) | slot) * (s + q_adj);
            ctx.flops(2);
            let new_topic = if u < s && kd > 0 {
                // Sparse branch: search the K_d-entry prefix sum (the warp
                // holds it in registers; a binary search costs ~log2(K_d)).
                let idx = search_prefix(&p1_prefix, u);
                ctx.int_ops((kd.max(2) as u64).ilog2() as u64 + 1);
                cols[idx] as usize
            } else {
                // Dense branch: descend the shared 32-way p2 tree, remapping
                // the draw across topic `c`'s reduced leaf.
                let u2 = (u - s).clamp(0.0, q_adj);
                let u2_orig = if u2 < leaf_before_c {
                    Some(u2)
                } else if u2 < leaf_before_c + p2_c_adj {
                    None // lands inside topic c's adjusted leaf
                } else {
                    Some((u2 + delta).clamp(0.0, q))
                };
                match u2_orig {
                    Some(u2) => {
                        let (idx, stats) = p2_tree.sample_with_stats(u2);
                        if in_shared {
                            ctx.shared_traffic(stats.nodes_visited as u64 * 4);
                        } else if cfg.share_p2_tree {
                            ctx.read_l1(stats.nodes_visited as u64 * 4);
                        } else {
                            ctx.read_global(stats.nodes_visited as u64 * 4);
                        }
                        ctx.int_ops(stats.levels as u64);
                        idx
                    }
                    None => {
                        // The warp still descends the tree to reach the leaf.
                        let depth = p2_tree.depth() as u64;
                        if in_shared {
                            ctx.shared_traffic(depth * 4);
                        } else if cfg.share_p2_tree {
                            ctx.read_l1(depth * 4);
                        } else {
                            ctx.read_global(depth * 4);
                        }
                        ctx.int_ops(depth);
                        c
                    }
                }
            };

            state.z_next[pos].store(new_topic as u16, Ordering::Relaxed);
            ctx.write_global(int_bytes); // compressed topic assignment
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ChunkState;
    use crate::work::build_work_items;
    use culda_corpus::{partition::DocRange, ChunkLayout, CorpusBuilder, DatasetProfile};
    use culda_gpusim::{Device, DeviceSpec, LaunchConfig};

    fn make_state(num_topics: usize, seed: u64) -> ChunkState {
        let corpus = DatasetProfile {
            name: "t".into(),
            num_docs: 60,
            vocab_size: 120,
            avg_doc_len: 30.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(seed);
        let layout = ChunkLayout::build(
            &corpus,
            DocRange {
                start: 0,
                end: corpus.num_docs(),
            },
        );
        let state = ChunkState::new(0, layout, num_topics);
        let cfg = LdaConfig::with_topics(num_topics);
        let mut x = seed as u32 | 1;
        state.random_init(&cfg, move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 16) as u16
        });
        // Make phi_global/nk_global consistent (single chunk: global = local).
        state.phi_global.copy_from(&state.phi_local);
        state.nk_global.store_all(&state.nk_local.to_vec());
        state
    }

    #[test]
    fn sampling_assigns_valid_topics_to_every_token() {
        let state = make_state(8, 3);
        let cfg = LdaConfig::with_topics(8);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        let kernel = SparseCgsBlock {
            state: &state,
            items: &items,
            config: &cfg,
            iteration: 0,
        };
        let dev = Device::new(0, DeviceSpec::titan_x_maxwell(), 11);
        let stats = dev.launch("Sampling", LaunchConfig::new(items.len()), &kernel);
        for z in &state.z_next {
            assert!((z.load(Ordering::Relaxed) as usize) < 8);
        }
        // Every token wrote one compressed assignment.
        assert_eq!(
            stats.counters.dram_write_bytes,
            state.num_tokens() as u64 * 2
        );
        assert!(stats.counters.dram_read_bytes > 0);
        assert!(stats.time.total_s > 0.0);
    }

    #[test]
    fn sampling_is_memory_bound_as_in_table_1() {
        let state = make_state(32, 5);
        let cfg = LdaConfig::with_topics(32);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        let kernel = SparseCgsBlock {
            state: &state,
            items: &items,
            config: &cfg,
            iteration: 0,
        };
        let dev = Device::new(0, DeviceSpec::v100_volta(), 1);
        let stats = dev.launch("Sampling", LaunchConfig::new(items.len()), &kernel);
        let intensity = stats.counters.flops_per_byte();
        // The paper's characterisation: well under 1 flop per byte.
        assert!(intensity < 1.0, "intensity {intensity}");
        assert!(intensity > 0.01);
        assert_eq!(stats.time.bound_by(), culda_gpusim::cost::Bound::Memory);
    }

    #[test]
    fn sampling_moves_assignments_towards_cooccurring_words() {
        // Build a corpus with two disjoint word groups; after several Gibbs
        // sweeps documents should concentrate on few topics (θ rows sparser
        // than uniform random assignment).
        let mut b = CorpusBuilder::new(20);
        for d in 0..40 {
            let base = if d % 2 == 0 { 0u32 } else { 10u32 };
            let doc: Vec<u32> = (0..30).map(|t| base + (t % 10) as u32).collect();
            b.push_doc(&doc);
        }
        let corpus = b.build();
        let layout = ChunkLayout::build(&corpus, DocRange { start: 0, end: 40 });
        let state = ChunkState::new(0, layout, 4);
        let cfg = LdaConfig::with_topics(4);
        let mut x = 9u32;
        state.random_init(&cfg, move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 16) as u16
        });
        state.phi_global.copy_from(&state.phi_local);
        state.nk_global.store_all(&state.nk_local.to_vec());

        let initial_nnz = state.theta.read().nnz();
        let dev = Device::new(0, DeviceSpec::titan_x_maxwell(), 77);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        for _ in 0..15 {
            let kernel = SparseCgsBlock {
                state: &state,
                items: &items,
                config: &cfg,
                iteration: 0,
            };
            dev.launch("Sampling", LaunchConfig::new(items.len()), &kernel);
            // Promote z_next → z and rebuild counts (what the update kernels do).
            for (z, zn) in state.z.iter().zip(&state.z_next) {
                z.store(zn.load(Ordering::Relaxed), Ordering::Relaxed);
            }
            state.rebuild_phi_local();
            state.rebuild_theta();
            state.phi_global.copy_from(&state.phi_local);
            state.nk_global.store_all(&state.nk_local.to_vec());
        }
        let final_nnz = state.theta.read().nnz();
        assert!(
            final_nnz < initial_nnz,
            "θ should sparsify: {initial_nnz} → {final_nnz}"
        );
        state.validate_counts().unwrap();
    }

    #[test]
    fn shared_tree_reuse_reduces_offchip_traffic() {
        let state = make_state(64, 13);
        let mut shared_cfg = LdaConfig::with_topics(64);
        shared_cfg.share_p2_tree = true;
        let mut unshared_cfg = shared_cfg.clone();
        unshared_cfg.share_p2_tree = false;

        let items = build_work_items(&state.layout, shared_cfg.max_tokens_per_block);
        let dev = Device::new(0, DeviceSpec::titan_x_maxwell(), 5);
        let with = dev.launch(
            "Sampling",
            LaunchConfig::new(items.len()),
            &SparseCgsBlock {
                state: &state,
                items: &items,
                config: &shared_cfg,
                iteration: 0,
            },
        );
        let without = dev.launch(
            "Sampling",
            LaunchConfig::new(items.len()),
            &SparseCgsBlock {
                state: &state,
                items: &items,
                config: &unshared_cfg,
                iteration: 0,
            },
        );
        // Without sharing, the p*/tree traffic lands in off-chip memory
        // instead of shared memory: shared traffic must be higher with the
        // optimisation and DRAM traffic higher without it.
        assert!(with.counters.shared_bytes > without.counters.shared_bytes);
        assert!(without.counters.dram_read_bytes > with.counters.dram_read_bytes);
    }
}
