//! The LightLDA cycled Metropolis–Hastings sampling kernel (Yuan et al.,
//! WWW'15 — reference \[42\] of the paper; ROADMAP "sampler portfolio" item).
//!
//! Both shipped kernels pay a per-token cost that grows with the problem:
//! the paper's §6.1 kernel is `O(K)` per *word* (tree build) plus `O(K_d)`
//! per token, and the alias hybrid still walks the document's `K_d` topics
//! for its exact sparse part.  [`LightLdaSampler`] drops the sparse pass
//! entirely: every token runs `mh_steps` O(1) Metropolis–Hastings steps of a
//! *cycle proposal* that alternates
//!
//! * **doc proposals** `q_d(k) ∝ θ_{d,k} + α` — drawn in O(1) by picking the
//!   topic of another token of the same document (mass `L_d`) or a uniform
//!   topic (smoothing mass `Kα`), using the document–word map
//!   ([`culda_corpus::ChunkLayout::doc_positions`]) for the token pick;
//! * **word proposals** `q_w(k) ∝ φ̂_{k,v} + β` — drawn in O(1) from a
//!   per-word *stale* alias table rebuilt every `rebuild_every` iterations
//!   ([`crate::IterationStats::sampler_setup_time_s`] carries the build
//!   span, exactly like the alias hybrid's);
//!
//! each corrected by an MH acceptance test against the *fresh* counts, so
//! the chain's stationary distribution is the exact collapsed conditional
//! `p^{¬token}` regardless of the staleness (an independence/mixture
//! proposal only has to dominate the support).
//!
//! ## Vocabulary pruning for power-law tails
//!
//! With `prune_below > 0`, words whose corpus-wide stale count
//! `Σ_k φ̂(k, v)` is below the threshold — the Zipf tail, which is most of
//! the vocabulary — build their word proposal from the sparse list of
//! non-zero topics plus an explicit `K·β` smoothing bucket instead of a
//! dense `K`-ary alias table: `O(nnz)` construction and memory instead of
//! `O(K)`.  The column sum is the word's corpus-wide token count — a
//! quantity independent of iteration, topology and batching — so the
//! pruning decision (and therefore the draw path) is bit-stable everywhere
//! the determinism contract reaches.
//!
//! ## Determinism
//!
//! Every MH draw derives from the per-token sub-stream seed
//! `t = stable_u64(seed, iteration, (doc ≪ 32) | slot)` with the same
//! `(2·step, i)` draw indexing the alias hybrid uses; the doc proposal's
//! token pick reads the *iteration-start* `z` (the kernels are
//! double-buffered into `z_next`), which is itself bit-stable across
//! topologies; and the stale word proposals are a pure function of the
//! synchronized `phi_global`.  The kernel therefore inherits the full
//! bit-exactness contract (`DESIGN.md` §13).

use crate::config::LdaConfig;
use crate::kernels::sampler::{SamplerKernel, SamplerResumeState, BURN_STREAM_BASE};
use crate::model::ChunkState;
use crate::work::{chunk_words, WorkItem};
use culda_gpusim::rng::{stable_f32, stable_u64};
use culda_gpusim::{BlockCtx, BlockKernel, Device, LaunchConfig};
use culda_sparse::{AliasTable, DenseMatrix, StaleAliasProposal};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One word's stale proposal distribution `q_w(k) ∝ φ̂_{k,v} + β`.
///
/// Both representations draw the *same* distribution; the pruned form just
/// splits it into the sparse count mass `Σ_k φ̂(k,v)` and the uniform
/// smoothing mass `K·β`, which is exact because β is a constant shared by
/// every topic.
pub enum WordProposal {
    /// Dense `K`-ary alias table over `φ̂_{k,v} + β` (the default, and every
    /// word at or above the pruning threshold).
    Dense(StaleAliasProposal),
    /// Sparse tail form: an alias table over the non-zero stale counts plus
    /// an explicit uniform smoothing bucket.
    Pruned {
        /// Topics with `φ̂(k, v) > 0`, ascending.
        topics: Vec<u16>,
        /// The stale counts at `topics` (parallel array).
        counts: Vec<u32>,
        /// Alias table over `counts`.
        table: AliasTable,
        /// `Σ counts` — the word's corpus-wide token count.
        sparse_mass: f64,
        /// `K·β` — the uniform smoothing mass.
        smooth_mass: f64,
        /// Number of topics `K` (the smoothing bucket draws uniformly from
        /// all of them).
        num_topics: usize,
    },
}

impl WordProposal {
    /// Build the proposal from a word's stale φ̂ column.  Pure function of
    /// `(counts, beta, prune_below)`, shared by the device build kernel and
    /// the checkpoint-resume reconstruction so both produce bit-identical
    /// tables.
    pub fn build(counts: &[u32], beta: f64, prune_below: usize) -> WordProposal {
        let k = counts.len();
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        if prune_below > 0 && (total as usize) < prune_below && total > 0 {
            let topics: Vec<u16> = (0..k)
                .filter(|&kk| counts[kk] > 0)
                .map(|kk| kk as u16)
                .collect();
            let nz: Vec<u32> = topics.iter().map(|&kk| counts[kk as usize]).collect();
            let weights: Vec<f32> = nz.iter().map(|&c| c as f32).collect();
            WordProposal::Pruned {
                table: AliasTable::new(&weights),
                topics,
                counts: nz,
                sparse_mass: total as f64,
                smooth_mass: beta * k as f64,
                num_topics: k,
            }
        } else {
            WordProposal::Dense(StaleAliasProposal::from_weights(
                counts.iter().map(|&c| c as f64 + beta).collect(),
            ))
        }
    }

    /// Draw a topic from two uniforms in `[0, 1)` — a pure function of its
    /// inputs, like [`AliasTable::sample_with`].
    #[inline]
    pub fn draw(&self, u1: f32, u2: f32) -> usize {
        match self {
            WordProposal::Dense(p) => p.table().sample_with(u1, u2),
            WordProposal::Pruned {
                topics,
                table,
                sparse_mass,
                smooth_mass,
                num_topics,
                ..
            } => {
                let pick = u1 as f64 * (sparse_mass + smooth_mass);
                if pick < *sparse_mass && !topics.is_empty() {
                    // Rescale the residual into a conditional uniform so one
                    // draw serves both the branch test and the bucket pick.
                    let ub = (pick / sparse_mass) as f32;
                    topics[table.sample_with(ub, u2)] as usize
                } else {
                    let frac = ((pick - sparse_mass) / smooth_mass).clamp(0.0, 1.0);
                    ((frac * *num_topics as f64) as usize).min(num_topics - 1)
                }
            }
        }
    }

    /// The stale proposal weight `φ̂(k, v) + β` of an arbitrary topic (the
    /// MH acceptance ratio evaluates it at the current and proposed topics).
    #[inline]
    pub fn weight(&self, kk: usize, beta: f64) -> f64 {
        match self {
            WordProposal::Dense(p) => p.weight(kk),
            WordProposal::Pruned { topics, counts, .. } => topics
                .binary_search(&(kk as u16))
                .map(|i| counts[i] as f64 + beta)
                .unwrap_or(beta),
        }
    }

    /// Whether this word took the pruned (sparse-tail) representation.
    #[inline]
    pub fn is_pruned(&self) -> bool {
        matches!(self, WordProposal::Pruned { .. })
    }
}

/// The stale per-word proposals of one chunk, tagged with the iteration they
/// were built at.
struct ChunkTables {
    built_at: u64,
    /// `WordProposal` per word id (`None` for words without tokens in the
    /// chunk).
    proposals: Vec<Option<WordProposal>>,
}

/// The global φ̂ snapshot the stale word proposals were last built from.
/// Checkpoints carry this (per-chunk proposals are a deterministic function
/// of it); unlike the alias hybrid no topic totals are needed, because the
/// `n_k + Vβ` normalizer cancels from the `q_w` acceptance ratio.
struct TablesSnapshot {
    built_at: u64,
    phi_hat: DenseMatrix<u32>,
    /// True when restored from a checkpoint rather than captured live; only
    /// a restored snapshot may satisfy a chunk's missing tables without a
    /// device build (the uninterrupted run paid that build already).
    restored: bool,
}

/// LightLDA cycled doc-/word-proposal Metropolis–Hastings sampler
/// ([`crate::SamplerStrategy::LightLda`]).  See the [module
/// docs](crate::kernels::lightlda) for the algorithm and determinism
/// argument.
pub struct LightLdaSampler {
    rebuild_every: u64,
    mh_steps: usize,
    prune_below: usize,
    chunks: Mutex<BTreeMap<usize, Arc<ChunkTables>>>,
    snapshot: Mutex<Option<Arc<TablesSnapshot>>>,
}

impl LightLdaSampler {
    /// A sampler rebuilding its stale word proposals every `rebuild_every`
    /// iterations, running `mh_steps` MH steps per token, and pruning words
    /// below `prune_below` global tokens to the sparse tail representation
    /// (`0` disables pruning).
    pub fn new(rebuild_every: usize, mh_steps: usize, prune_below: usize) -> Self {
        assert!(rebuild_every >= 1, "rebuild_every must be at least 1");
        assert!(mh_steps >= 1, "mh_steps must be at least 1");
        LightLdaSampler {
            rebuild_every: rebuild_every as u64,
            mh_steps,
            prune_below,
            chunks: Mutex::new(BTreeMap::new()),
            snapshot: Mutex::new(None),
        }
    }

    /// The configured rebuild cadence.
    pub fn rebuild_every(&self) -> usize {
        self.rebuild_every as usize
    }

    /// The configured MH steps per token.
    pub fn mh_steps(&self) -> usize {
        self.mh_steps
    }

    /// The configured vocabulary-pruning threshold (0 = disabled).
    pub fn prune_below(&self) -> usize {
        self.prune_below
    }

    /// Same cadence rule as the alias hybrid: always build when no tables
    /// exist yet, otherwise rebuild on multiples of the cadence.
    fn needs_rebuild(&self, built_at: Option<u64>, iteration: u64) -> bool {
        match built_at {
            None => true,
            Some(at) => iteration > at && iteration.is_multiple_of(self.rebuild_every),
        }
    }

    /// Reconstruct one chunk's proposals from a restored snapshot through
    /// the same [`WordProposal::build`] the device kernel runs, on the same
    /// `u32` counts — bit-identical to the tables the uninterrupted run
    /// held.
    fn proposals_from_snapshot(
        &self,
        snap: &TablesSnapshot,
        state: &ChunkState,
        config: &LdaConfig,
    ) -> Vec<Option<WordProposal>> {
        let k = config.num_topics;
        let mut proposals: Vec<Option<WordProposal>> = Vec::with_capacity(state.layout.vocab_size);
        proposals.resize_with(state.layout.vocab_size, || None);
        for w in chunk_words(&state.layout) {
            let v = w as usize;
            let counts: Vec<u32> = (0..k).map(|kk| snap.phi_hat.get(kk, v)).collect();
            proposals[v] = Some(WordProposal::build(&counts, config.beta, self.prune_below));
        }
        proposals
    }
}

impl SamplerKernel for LightLdaSampler {
    fn name(&self) -> &'static str {
        crate::kernels::names::SAMPLING
    }

    /// Rebuild the chunk's stale word proposals on the configured cadence by
    /// launching the word-proposal build kernel on `device`; returns the
    /// simulated build span (0 on non-rebuild iterations).
    fn prepare_chunk(
        &self,
        device: &Device,
        state: &ChunkState,
        config: &LdaConfig,
        iteration: u64,
    ) -> f64 {
        let built_at = self.chunks.lock().get(&state.chunk_id).map(|t| t.built_at);
        if built_at.is_none() {
            // After a checkpoint resume the restored snapshot stands in for
            // the tables the uninterrupted run would still be holding:
            // reconstruct host-side at zero cost (the original build was
            // paid before the checkpoint) unless the resume lands on a
            // rebuild iteration anyway.
            let restored = self
                .snapshot
                .lock()
                .clone()
                .filter(|s| s.restored && s.phi_hat.cols() == state.layout.vocab_size);
            if let Some(snap) = restored {
                if !self.needs_rebuild(Some(snap.built_at), iteration) {
                    let proposals = self.proposals_from_snapshot(&snap, state, config);
                    self.chunks.lock().insert(
                        state.chunk_id,
                        Arc::new(ChunkTables {
                            built_at: snap.built_at,
                            proposals,
                        }),
                    );
                    return 0.0;
                }
            }
        }
        if !self.needs_rebuild(built_at, iteration) {
            return 0.0;
        }
        let words = chunk_words(&state.layout);
        let mut proposals: Vec<Option<WordProposal>> = Vec::with_capacity(state.layout.vocab_size);
        proposals.resize_with(state.layout.vocab_size, || None);
        let span = if words.is_empty() {
            0.0
        } else {
            let slots: Vec<Mutex<Option<WordProposal>>> =
                (0..words.len()).map(|_| Mutex::new(None)).collect();
            let build = LightBuildBlock {
                state,
                config,
                prune_below: self.prune_below,
                words: &words,
                slots: &slots,
            };
            let stats = device.launch(
                crate::kernels::names::LIGHT_BUILD,
                LaunchConfig::new(words.len()),
                &build,
            );
            for (&w, slot) in words.iter().zip(slots) {
                proposals[w as usize] = slot.into_inner();
            }
            stats.time.total_s
        };
        self.chunks.lock().insert(
            state.chunk_id,
            Arc::new(ChunkTables {
                built_at: iteration,
                proposals,
            }),
        );
        // Capture the snapshot behind this rebuild once per rebuild
        // iteration (every chunk builds from the same synchronized φ).
        {
            let mut snap = self.snapshot.lock();
            if snap
                .as_ref()
                .is_none_or(|s| s.restored || s.built_at != iteration)
            {
                *snap = Some(Arc::new(TablesSnapshot {
                    built_at: iteration,
                    phi_hat: state.phi_global.to_dense(),
                    restored: false,
                }));
            }
        }
        span
    }

    /// The φ̂ snapshot behind the current word proposals (`None` until the
    /// first rebuild ever runs).
    fn resume_state(&self) -> Option<SamplerResumeState> {
        self.snapshot
            .lock()
            .as_ref()
            .map(|s| SamplerResumeState::LightWordTables {
                built_at: s.built_at,
                phi_hat: s.phi_hat.clone(),
            })
    }

    /// Install a checkpointed snapshot; the next
    /// [`SamplerKernel::prepare_chunk`] of each chunk reconstructs its
    /// proposals from it, keeping the resumed run bit-exact and on the
    /// original rebuild cadence.
    fn restore_resume_state(&self, state: &SamplerResumeState) {
        // States captured by other portfolio members are ignored (checkpoint
        // validation rejects such mismatches before they get here anyway).
        if let SamplerResumeState::LightWordTables { built_at, phi_hat } = state {
            *self.snapshot.lock() = Some(Arc::new(TablesSnapshot {
                built_at: *built_at,
                phi_hat: phi_hat.clone(),
                restored: true,
            }));
        }
    }

    fn sampling_kernel<'a>(
        &'a self,
        state: &'a ChunkState,
        items: &'a [WorkItem],
        config: &'a LdaConfig,
        iteration: u64,
    ) -> Box<dyn BlockKernel + 'a> {
        let tables = self
            .chunks
            .lock()
            .get(&state.chunk_id)
            .cloned()
            .expect("prepare_chunk must run before sampling_kernel");
        Box::new(LightSampleBlock {
            state,
            items,
            config,
            iteration,
            mh_steps: self.mh_steps,
            tables,
        })
    }

    /// Iteration 0 always pays a full word-proposal build; steady state pays
    /// it only every `rebuild_every` iterations.
    fn predict_steady_compute_s(&self, measured_compute_s: f64, measured_setup_s: f64) -> f64 {
        (measured_compute_s - measured_setup_s).max(0.0)
            + measured_setup_s / self.rebuild_every as f64
    }

    /// Host-side burn-in with the same cycle-proposal structure as the
    /// device kernel: stale word proposals are built once per (document,
    /// sweep), then every token runs `mh_steps` alternating doc/word MH
    /// steps against the evolving live counts.
    fn burn_in_sweep(
        &self,
        config: &LdaConfig,
        uid: u64,
        sweep: usize,
        words: &[u32],
        z: &mut [u16],
        theta_d: &mut [u32],
        phi: &mut DenseMatrix<u32>,
        nk: &mut [i64],
    ) {
        let k = config.num_topics;
        let alpha = config.alpha;
        let beta = config.beta;
        let alpha_k = alpha * k as f64;
        let stream = BURN_STREAM_BASE - sweep as u64;
        let v_beta = beta * phi.cols() as f64;
        let len = words.len();

        // Stale snapshot at sweep start, for the document's distinct words.
        let mut stale: BTreeMap<u32, WordProposal> = BTreeMap::new();
        for &w in words {
            stale.entry(w).or_insert_with(|| {
                let counts: Vec<u32> = (0..k).map(|kk| phi.get(kk, w as usize)).collect();
                WordProposal::build(&counts, beta, self.prune_below)
            });
        }

        for (slot, &w) in words.iter().enumerate() {
            let w = w as usize;
            let c = z[slot] as usize;
            // Remove the token: the MH chain targets p^{¬token}.
            theta_d[c] -= 1;
            *phi.get_mut(c, w) -= 1;
            nk[c] -= 1;

            let proposal = &stale[&(w as u32)];
            let fresh = |kk: usize| (phi.get(kk, w) as f64 + beta) / (nk[kk] as f64 + v_beta);
            let posterior = |kk: usize| (theta_d[kk] as f64 + alpha) * fresh(kk);

            let tseed = stable_u64(config.seed, stream, (uid << 32) | slot as u64);
            let mut k_cur = c;
            for step in 0..self.mh_steps {
                let sstep = step as u64;
                let (k_prop, q_ratio) = if step % 2 == 0 {
                    // Doc proposal q(k) ∝ θ_{d,k} + α, drawn O(1): the topic
                    // of a random token of this document (including the
                    // current one, as the reference implementation does) or
                    // a uniform topic from the smoothing mass.
                    let pick = stable_f32(tseed, 2 * sstep, 0) as f64 * (len as f64 + alpha_k);
                    let u1 = stable_f32(tseed, 2 * sstep, 1);
                    let kp = if pick < len as f64 {
                        let j = ((u1 as f64 * len as f64) as usize).min(len - 1);
                        z[j] as usize
                    } else {
                        ((u1 as f64 * k as f64) as usize).min(k - 1)
                    };
                    let q_new = theta_d[kp] as f64 + alpha;
                    let q_old = theta_d[k_cur] as f64 + alpha;
                    (kp, q_old / q_new)
                } else {
                    // Word proposal q(k) ∝ φ̂_{k,v} + β from the stale table.
                    let u1 = stable_f32(tseed, 2 * sstep, 1);
                    let u2 = stable_f32(tseed, 2 * sstep, 2);
                    let kp = proposal.draw(u1, u2);
                    let q_new = proposal.weight(kp, beta);
                    let q_old = proposal.weight(k_cur, beta);
                    (kp, q_old / q_new)
                };
                if k_prop == k_cur {
                    continue;
                }
                let accept = posterior(k_prop) / posterior(k_cur) * q_ratio;
                if (stable_f32(tseed, 2 * sstep + 1, 3) as f64) < accept {
                    k_cur = k_prop;
                }
            }

            z[slot] = k_cur as u16;
            theta_d[k_cur] += 1;
            *phi.get_mut(k_cur, w) += 1;
            nk[k_cur] += 1;
        }
    }
}

/// The word-proposal build kernel: one thread block scans one word's
/// synchronized φ̂ column and builds its [`WordProposal`] (dense Vose table
/// or the pruned sparse-tail form).
struct LightBuildBlock<'a> {
    state: &'a ChunkState,
    config: &'a LdaConfig,
    prune_below: usize,
    /// Words with tokens in this chunk, one per block.
    words: &'a [u32],
    /// Output slot per block.
    slots: &'a [Mutex<Option<WordProposal>>],
}

impl BlockKernel for LightBuildBlock<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let v = self.words[block_id] as usize;
        let k = self.config.num_topics;
        let int_bytes: u64 = if self.config.compress_16bit { 2 } else { 4 };

        // The column scan is unavoidable (the counts live there); what the
        // pruned form saves is the table construction and its footprint.
        let counts: Vec<u32> = (0..k).map(|kk| self.state.phi_global.load(kk, v)).collect();
        ctx.read_global(k as u64 * int_bytes); // φ̂[·, v]
        ctx.flops(k as u64); // accumulate the column total
        let proposal = WordProposal::build(&counts, self.config.beta, self.prune_below);
        let built = match &proposal {
            WordProposal::Dense(_) => k as u64,
            WordProposal::Pruned { topics, .. } => topics.len() as u64,
        };
        ctx.int_ops(built); // Vose small/large queue maintenance
        ctx.write_global(built * (8 + int_bytes) + 16); // prob + alias + φ̂ snapshot (+ masses)
        *self.slots[block_id].lock() = Some(proposal);
    }
}

/// The per-launch block kernel of [`LightLdaSampler`]: one chunk's work
/// items at one iteration, running the cycle-proposal MH chain per token.
struct LightSampleBlock<'a> {
    state: &'a ChunkState,
    items: &'a [WorkItem],
    config: &'a LdaConfig,
    iteration: u64,
    mh_steps: usize,
    tables: Arc<ChunkTables>,
}

impl BlockKernel for LightSampleBlock<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let item = &self.items[block_id];
        if item.is_empty() {
            return;
        }
        let state = self.state;
        let cfg = self.config;
        let v = item.word as usize;
        let k = cfg.num_topics;
        let alpha = cfg.alpha;
        let beta = cfg.beta;
        let alpha_k = alpha * k as f64;
        let v_beta = beta * state.layout.vocab_size as f64;
        let int_bytes: u64 = if cfg.compress_16bit { 2 } else { 4 };

        let proposal = self.tables.proposals[v]
            .as_ref()
            .expect("word proposals cover every word with tokens in the chunk");
        ctx.read_global(16); // proposal masses, once per block

        let theta = state.theta.read();
        for pos in item.start..item.end {
            let pos = pos as usize;
            let d = state.layout.token_doc[pos] as usize;
            ctx.read_global(4); // token → document index
            let c = state.z[pos].load(Ordering::Relaxed) as usize;
            ctx.read_global(int_bytes); // current topic assignment
            let len = state.layout.doc_len(d);
            let doc_pos = state.layout.doc_positions(d);
            ctx.read_global(8); // doc_ptr[d], doc_ptr[d+1]

            // Fresh p*(k) with the token's own count removed, and the
            // self-excluded θ row probe (CSR columns are sorted; the binary
            // search is charged per probe — light never walks the full row,
            // which is its whole point).
            let phi_mat = &state.phi_global;
            let nk = &state.nk_global;
            let fresh = |kk: usize| {
                let self_count = if kk == c { 1.0 } else { 0.0 };
                ((phi_mat.load(kk, v) as f64 - self_count).max(0.0) + beta)
                    / ((nk.get(kk) as f64 - self_count).max(0.0) + v_beta)
            };
            let (cols, vals) = theta.row(d);
            let kd = cols.len();
            let probe_cost = (kd.max(2) as u64).ilog2() as u64 + 1;
            let theta_adj = |kk: usize| {
                let raw = cols
                    .binary_search(&(kk as u16))
                    .map(|i| vals[i] as f64)
                    .unwrap_or(0.0);
                if kk == c {
                    (raw - 1.0).max(0.0)
                } else {
                    raw
                }
            };
            let posterior = |kk: usize| (theta_adj(kk) + alpha) * fresh(kk);

            // Per-token MH chain, every draw keyed by token identity with
            // the same (2·step, i) indexing as the alias hybrid.
            let global_doc = (state.layout.range.start + d) as u64;
            let slot = state.token_slot[pos] as u64;
            let tseed = stable_u64(cfg.seed, self.iteration, (global_doc << 32) | slot);

            let mut k_cur = c;
            for step in 0..self.mh_steps {
                let sstep = step as u64;
                let (k_prop, q_ratio) = if step % 2 == 0 {
                    // Doc proposal: another token's iteration-start topic
                    // (mass L_d) or a uniform topic (mass Kα).
                    let pick = ctx.stable_f32(tseed, 2 * sstep, 0) as f64 * (len as f64 + alpha_k);
                    let u1 = ctx.stable_f32(tseed, 2 * sstep, 1);
                    ctx.flops(4);
                    let kp = if pick < len as f64 {
                        let j = ((u1 as f64 * len as f64) as usize).min(len - 1);
                        ctx.read_global(4 + int_bytes); // doc map entry + that token's z
                        state.z[doc_pos[j] as usize].load(Ordering::Relaxed) as usize
                    } else {
                        ((u1 as f64 * k as f64) as usize).min(k - 1)
                    };
                    // q(k)/q(k') with the fresh self-excluded θ (two probes).
                    ctx.int_ops(2 * probe_cost);
                    ctx.read_l1(2 * probe_cost * (int_bytes + 4));
                    let q_new = theta_adj(kp) + alpha;
                    let q_old = theta_adj(k_cur) + alpha;
                    (kp, q_old / q_new)
                } else {
                    // Word proposal from the stale table: O(1).
                    let u1 = ctx.stable_f32(tseed, 2 * sstep, 1);
                    let u2 = ctx.stable_f32(tseed, 2 * sstep, 2);
                    ctx.read_l1(8); // prob + alias of one bucket
                    let kp = proposal.draw(u1, u2);
                    ctx.read_l1(8); // φ̂ snapshot at the two topics
                    ctx.flops(4);
                    let q_new = proposal.weight(kp, beta);
                    let q_old = proposal.weight(k_cur, beta);
                    (kp, q_old / q_new)
                };
                if k_prop == k_cur {
                    continue;
                }
                // MH acceptance with the exact fresh posterior masses:
                // accept = p(k')q(k) / (p(k)q(k')).
                let accept = posterior(k_prop) / posterior(k_cur) * q_ratio;
                ctx.read_l1(2 * (int_bytes + 8)); // fresh φ/n_k at two topics
                ctx.int_ops(2 * probe_cost); // θ row probes
                ctx.flops(16);
                if (ctx.stable_f32(tseed, 2 * sstep + 1, 3) as f64) < accept {
                    k_cur = k_prop;
                }
            }

            state.z_next[pos].store(k_cur as u16, Ordering::Relaxed);
            ctx.write_global(int_bytes); // compressed topic assignment
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::build_work_items;
    use culda_corpus::{partition::DocRange, ChunkLayout, DatasetProfile};
    use culda_gpusim::DeviceSpec;

    fn make_state(num_topics: usize, seed: u64) -> ChunkState {
        let corpus = DatasetProfile {
            name: "lightlda".into(),
            num_docs: 60,
            vocab_size: 120,
            avg_doc_len: 30.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(seed);
        let layout = ChunkLayout::build(
            &corpus,
            DocRange {
                start: 0,
                end: corpus.num_docs(),
            },
        );
        let state = ChunkState::new(0, layout, num_topics);
        let cfg = LdaConfig::with_topics(num_topics);
        state.random_init_stable(&cfg, cfg.seed);
        state.phi_global.copy_from(&state.phi_local);
        state.nk_global.store_all(&state.nk_local.to_vec());
        state
    }

    #[test]
    fn prepare_builds_on_cadence_and_sampling_assigns_valid_topics() {
        let state = make_state(16, 5);
        let cfg = LdaConfig::with_topics(16).sampler(crate::SamplerStrategy::LightLda {
            rebuild_every: 3,
            mh_steps: 4,
            prune_below: 0,
        });
        let sampler = LightLdaSampler::new(3, 4, 0);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 7);

        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 0) > 0.0);
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 1), 0.0);
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 2), 0.0);
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 3) > 0.0);

        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        let kernel = sampler.sampling_kernel(&state, &items, &cfg, 3);
        let stats = dev.launch(sampler.name(), LaunchConfig::new(items.len()), &kernel);
        for z in &state.z_next {
            assert!((z.load(Ordering::Relaxed) as usize) < 16);
        }
        assert!(stats.counters.dram_read_bytes > 0);
        assert!(stats.counters.rng_draws > 0);
    }

    #[test]
    fn pruned_variant_samples_the_same_distribution_family() {
        // A pruned word proposal draws from exactly q(k) ∝ φ̂(k,v) + β: sweep
        // a grid of uniforms and compare the empirical law against the dense
        // representation built from the same counts.
        let counts = vec![0u32, 3, 0, 1, 0, 0, 0, 0];
        let beta = 0.25;
        let dense = WordProposal::build(&counts, beta, 0);
        let pruned = WordProposal::build(&counts, beta, 100);
        assert!(!dense.is_pruned());
        assert!(pruned.is_pruned());
        let k = counts.len();
        let total: f64 = counts.iter().map(|&c| c as f64 + beta).sum();
        let n = 600;
        let mut freq = vec![0usize; k];
        for a in 0..n {
            for b in 0..n {
                let u1 = (a as f32 + 0.5) / n as f32;
                let u2 = (b as f32 + 0.5) / n as f32;
                freq[pruned.draw(u1, u2)] += 1;
            }
        }
        for kk in 0..k {
            let expect = (counts[kk] as f64 + beta) / total;
            let got = freq[kk] as f64 / (n * n) as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "topic {kk}: got {got}, expected {expect}"
            );
            // The acceptance-ratio weights agree exactly between the forms.
            assert_eq!(pruned.weight(kk, beta), dense.weight(kk, beta));
        }
    }

    #[test]
    fn pruning_keys_on_the_global_count_threshold() {
        let state = make_state(16, 5);
        let cfg = LdaConfig::with_topics(16);
        // A huge threshold prunes every word; zero prunes none.
        let pruned = LightLdaSampler::new(4, 4, usize::MAX);
        let dense = LightLdaSampler::new(4, 4, 0);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 7);
        let span_pruned = pruned.prepare_chunk(&dev, &state, &cfg, 0);
        let span_dense = dense.prepare_chunk(&dev, &state, &cfg, 0);
        assert!(span_pruned > 0.0 && span_dense > 0.0);
        // The pruned build writes O(nnz) per word instead of O(K): cheaper.
        assert!(
            span_pruned < span_dense,
            "pruned {span_pruned} vs dense {span_dense}"
        );
        let chunks = pruned.chunks.lock();
        let tables = chunks.get(&0).unwrap();
        assert!(tables.proposals.iter().flatten().any(|p| p.is_pruned()));
        let chunks = dense.chunks.lock();
        let tables = chunks.get(&0).unwrap();
        assert!(tables.proposals.iter().flatten().all(|p| !p.is_pruned()));
    }

    #[test]
    fn restored_snapshot_resumes_mid_cadence_without_a_rebuild() {
        let cfg = LdaConfig::with_topics(8);
        let sampler = LightLdaSampler::new(4, 4, 8);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 1);

        assert!(sampler.resume_state().is_none());

        let state = make_state(8, 9);
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 0) > 0.0);
        let snapshot = sampler.resume_state().expect("snapshot after rebuild");

        let restored = LightLdaSampler::new(4, 4, 8);
        restored.restore_resume_state(&snapshot);
        let state_b = make_state(8, 9);
        assert_eq!(restored.prepare_chunk(&dev, &state_b, &cfg, 2), 0.0);

        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 2), 0.0);
        dev.launch(
            sampler.name(),
            LaunchConfig::new(items.len()),
            &sampler.sampling_kernel(&state, &items, &cfg, 2),
        );
        dev.launch(
            restored.name(),
            LaunchConfig::new(items.len()),
            &restored.sampling_kernel(&state_b, &items, &cfg, 2),
        );
        for (a, b) in state.z_next.iter().zip(&state_b.z_next) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }

        assert_eq!(restored.prepare_chunk(&dev, &state_b, &cfg, 3), 0.0);
        assert!(restored.prepare_chunk(&dev, &state_b, &cfg, 4) > 0.0);
    }

    #[test]
    fn light_sampling_avoids_the_per_token_theta_row_walk() {
        // At large K and long documents, the light kernel's per-token cost
        // is O(mh_steps · log K_d) instead of O(K_d): the off-chip traffic
        // must come in clearly under both the sparse kernel (which also pays
        // the per-word O(K) tree build) and the alias hybrid's sparse pass.
        let k = 256;
        let state = make_state(k, 3);
        let cfg = LdaConfig::with_topics(k);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);

        let dev = Device::new(0, DeviceSpec::v100_volta(), 2);
        let sparse_stats = dev.launch(
            "Sampling",
            LaunchConfig::new(items.len()),
            &crate::kernels::SparseCgsSampler.sampling_kernel(&state, &items, &cfg, 1),
        );

        let light = LightLdaSampler::new(8, 4, 0);
        light.prepare_chunk(&dev, &state, &cfg, 0);
        let light_stats = dev.launch(
            "Sampling",
            LaunchConfig::new(items.len()),
            &light.sampling_kernel(&state, &items, &cfg, 1),
        );
        assert!(
            (light_stats.counters.dram_read_bytes as f64)
                < sparse_stats.counters.dram_read_bytes as f64 * 0.5,
            "light {} vs sparse {}",
            light_stats.counters.dram_read_bytes,
            sparse_stats.counters.dram_read_bytes
        );
    }

    #[test]
    #[should_panic(expected = "prepare_chunk")]
    fn sampling_before_prepare_is_a_bug() {
        let state = make_state(8, 1);
        let cfg = LdaConfig::with_topics(8);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        let sampler = LightLdaSampler::new(4, 4, 0);
        let _ = sampler.sampling_kernel(&state, &items, &cfg, 0);
    }
}
