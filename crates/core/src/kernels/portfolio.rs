//! Measured auto-selection across the sampler portfolio
//! ([`crate::SamplerStrategy::Auto`]).
//!
//! The φ-sync auto-tuner picks its shard count from *timings* because the
//! shard count is bit-neutral — any choice samples the same assignments.
//! The sampler choice is **not** bit-neutral (each kernel is its own
//! deterministic trajectory), so it must never depend on wall-clock noise,
//! thread counts, or topology.  Instead, construction measures
//! [`ChunkStatistics`] — corpus-level quantities that are identical however
//! the corpus is partitioned or batched — feeds them through an analytic
//! per-iteration cost model ([`predicted_spans`]), and asks each candidate
//! kernel's own [`crate::kernels::SamplerKernel::predict_steady_compute_s`]
//! to amortise its periodic setup, exactly as the shard tuner would with
//! measured spans.  The cheapest steady-state candidate wins
//! ([`auto_select_sampler`]); ties resolve to the earliest candidate in
//! [`candidates`] order, so the decision is a pure function of the corpus
//! and `K`.
//!
//! The *resolved* concrete strategy is what flows into the trainer, the
//! session and every checkpoint — resume never re-decides (`DESIGN.md`
//! §13.3).

use crate::config::{LdaConfig, SamplerStrategy};
use crate::kernels::sampler::sampler_for_strategy;
use culda_corpus::Corpus;

/// A word is "tail" when its corpus-wide token count is at or below this;
/// [`ChunkStatistics::tail_mass`] is the fraction of active words in the
/// tail, which decides whether the LightLDA candidate runs vocabulary
/// pruning.
pub const TAIL_WORD_TOKENS: u64 = 8;

/// Above this tail fraction the LightLDA candidate is the pruned variant.
pub const PRUNE_TAIL_THRESHOLD: f64 = 0.5;

/// Corpus-level statistics the sampler auto-selection scores against.
///
/// Every field is a pure function of the corpus content and the configured
/// `K` — independent of chunking, GPU topology, thread count and streaming
/// ingestion batching — which is what makes an auto-selected run bit-exact
/// everywhere the determinism contract reaches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStatistics {
    /// Configured number of topics `K`.
    pub num_topics: usize,
    /// Distinct words with at least one token.
    pub active_words: usize,
    /// Total token count `T`.
    pub total_tokens: u64,
    /// Mean document length `T / D` (0 for an empty corpus).
    pub mean_doc_len: f64,
    /// Fraction of active words with ≤ [`TAIL_WORD_TOKENS`] tokens — the
    /// power-law tail share of the vocabulary.
    pub tail_mass: f64,
}

impl ChunkStatistics {
    /// Measure the statistics of `corpus` under `config`.
    pub fn measure(corpus: &Corpus, config: &LdaConfig) -> ChunkStatistics {
        let freqs = corpus.word_frequencies();
        let active: Vec<u64> = freqs.into_iter().filter(|&c| c > 0).collect();
        let active_words = active.len();
        let tail = active.iter().filter(|&&c| c <= TAIL_WORD_TOKENS).count();
        let tail_mass = if active_words == 0 {
            0.0
        } else {
            tail as f64 / active_words as f64
        };
        ChunkStatistics {
            num_topics: config.num_topics,
            active_words,
            total_tokens: corpus.num_tokens() as u64,
            mean_doc_len: if corpus.num_docs() == 0 {
                0.0
            } else {
                corpus.num_tokens() as f64 / corpus.num_docs() as f64
            },
            tail_mass,
        }
    }

    /// The document-topic support size `K_d` the per-token kernels see: a
    /// document cannot touch more topics than it has tokens.
    fn kd(&self) -> f64 {
        self.mean_doc_len.min(self.num_topics as f64).max(1.0)
    }
}

/// The candidate strategies auto-selection scores, in tie-break order.  The
/// LightLDA entry is the pruned variant when the vocabulary is
/// tail-dominated ([`PRUNE_TAIL_THRESHOLD`]), the dense one otherwise.
pub fn candidates(stats: &ChunkStatistics) -> [SamplerStrategy; 3] {
    let light = if stats.tail_mass > PRUNE_TAIL_THRESHOLD {
        SamplerStrategy::light_lda_pruned()
    } else {
        SamplerStrategy::light_lda()
    };
    [
        SamplerStrategy::SparseCgs,
        SamplerStrategy::alias_hybrid(),
        light,
    ]
}

/// Analytic iteration-0 spans `(compute_s, setup_s)` of one candidate on
/// `stats`, in abstract cost units (only ratios matter — every candidate is
/// scored on the same scale).  `compute_s` includes `setup_s`, mirroring how
/// the scheduler's measured iteration-0 spans feed
/// [`crate::kernels::SamplerKernel::predict_steady_compute_s`].
///
/// The model mirrors what each block kernel actually charges per token and
/// per word:
///
/// * **sparse CGS** — `O(K_d)` per token for the S/Q sparse pass plus a
///   per-word `O(K)` index-tree build *every* iteration (no amortisable
///   setup, so `setup_s = 0`);
/// * **alias hybrid** — keeps the `O(K_d)` sparse pass, adds `mh` O(1)
///   steps, and pays the per-word `O(K)` table build only on rebuilds;
/// * **LightLDA** — `mh` steps of O(1) proposals plus `O(log K_d)` θ-row
///   probes per step, no sparse pass at all; its rebuild scans `O(K)` per
///   word but pruned tail words only construct `O(nnz)` entries.
pub fn predicted_spans(stats: &ChunkStatistics, strategy: SamplerStrategy) -> (f64, f64) {
    let t = stats.total_tokens as f64;
    let w = stats.active_words as f64;
    let k = stats.num_topics as f64;
    let kd = stats.kd();
    match strategy {
        SamplerStrategy::SparseCgs => {
            // Tree build is per-iteration work, not amortisable setup.
            let compute = t * (kd + 4.0) + w * k;
            (compute, 0.0)
        }
        SamplerStrategy::AliasHybrid { mh_steps, .. } => {
            let setup = w * k * 1.2;
            let compute = t * (kd + 3.0 * mh_steps as f64) + setup;
            (compute, setup)
        }
        SamplerStrategy::LightLda {
            mh_steps,
            prune_below,
            ..
        } => {
            // With pruning, tail words build O(nnz) ≈ O(tail cap) entries;
            // the O(K) column scan (half the build charge) remains.
            let pruned_frac = if prune_below > 0 {
                stats.tail_mass
            } else {
                0.0
            };
            let per_word =
                0.6 * k + 0.6 * (k * (1.0 - pruned_frac) + TAIL_WORD_TOKENS as f64 * pruned_frac);
            let setup = w * per_word;
            let compute = t * mh_steps as f64 * (2.0 + kd.max(2.0).log2()) + setup;
            (compute, setup)
        }
        SamplerStrategy::Auto => {
            unreachable!("Auto is never a candidate of its own selection")
        }
    }
}

/// Pick the portfolio member whose own steady-state prediction over the
/// analytic spans is fastest.  Pure function of `stats`; ties resolve to the
/// earliest candidate.
pub fn auto_select_sampler(stats: &ChunkStatistics) -> SamplerStrategy {
    let mut best: Option<(f64, SamplerStrategy)> = None;
    for cand in candidates(stats) {
        let (compute, setup) = predicted_spans(stats, cand);
        let steady = sampler_for_strategy(cand).predict_steady_compute_s(compute, setup);
        if best.is_none_or(|(b, _)| steady < b) {
            best = Some((steady, cand));
        }
    }
    best.expect("candidates is non-empty").1
}

/// Resolve a configuration's sampler in place: [`SamplerStrategy::Auto`]
/// becomes the measured selection for `corpus`, concrete strategies pass
/// through untouched.  Returns the resolved strategy.
pub fn resolve_auto_sampler(config: &mut LdaConfig, corpus: &Corpus) -> SamplerStrategy {
    if config.sampler.is_auto() {
        let stats = ChunkStatistics::measure(corpus, config);
        config.sampler = auto_select_sampler(&stats);
    }
    config.sampler
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn stats(k: usize, words: usize, tokens: u64, len: f64, tail: f64) -> ChunkStatistics {
        ChunkStatistics {
            num_topics: k,
            active_words: words,
            total_tokens: tokens,
            mean_doc_len: len,
            tail_mass: tail,
        }
    }

    #[test]
    fn tail_heavy_large_k_selects_light_and_short_doc_small_k_selects_sparse() {
        // The perf-gate's tail-heavy scenario shape: many short docs, a big
        // vocabulary that is mostly tail, K in the hundreds.
        let tail_heavy = stats(512, 15_000, 120_000, 20.0, 0.9);
        let picked = auto_select_sampler(&tail_heavy);
        assert!(
            matches!(picked, SamplerStrategy::LightLda { prune_below, .. } if prune_below > 0),
            "tail-heavy large-K picked {picked}"
        );

        // Short documents at small K: the sparse kernel's O(K_d) pass and
        // O(K) tree build are both cheap; MH overhead is not worth it.
        let short_small = stats(32, 5_000, 100_000, 8.0, 0.2);
        assert_eq!(
            auto_select_sampler(&short_small),
            SamplerStrategy::SparseCgs
        );
    }

    #[test]
    fn selection_is_the_argmin_of_the_model() {
        for s in [
            stats(512, 15_000, 120_000, 20.0, 0.9),
            stats(32, 5_000, 100_000, 8.0, 0.2),
            stats(128, 2_000, 50_000, 60.0, 0.4),
            stats(1024, 40_000, 1_000_000, 100.0, 0.7),
        ] {
            let picked = auto_select_sampler(&s);
            let (pc, ps) = predicted_spans(&s, picked);
            let picked_score = sampler_for_strategy(picked).predict_steady_compute_s(pc, ps);
            for cand in candidates(&s) {
                let (c, su) = predicted_spans(&s, cand);
                let score = sampler_for_strategy(cand).predict_steady_compute_s(c, su);
                assert!(
                    picked_score <= score,
                    "{picked} ({picked_score}) beaten by {cand} ({score}) on {s:?}"
                );
            }
        }
    }

    #[test]
    fn measure_reports_topology_free_statistics() {
        let corpus = DatasetProfile::nytimes()
            .scaled_to_tokens(20_000)
            .generate(7);
        let cfg = LdaConfig::with_topics(64);
        let s = ChunkStatistics::measure(&corpus, &cfg);
        assert_eq!(s.num_topics, 64);
        assert_eq!(s.total_tokens, corpus.num_tokens() as u64);
        assert!(s.active_words > 0 && s.active_words <= corpus.vocab_size());
        assert!(s.mean_doc_len > 0.0);
        assert!((0.0..=1.0).contains(&s.tail_mass));
    }

    #[test]
    fn empty_corpus_resolves_deterministically_to_the_default() {
        // A streaming session starts empty; Auto must still resolve to one
        // concrete strategy without dividing by zero.
        let corpus = culda_corpus::CorpusBuilder::new(100).build();
        let mut cfg = LdaConfig::with_topics(16).sampler(SamplerStrategy::Auto);
        let resolved = resolve_auto_sampler(&mut cfg, &corpus);
        assert_eq!(resolved, SamplerStrategy::SparseCgs);
        assert_eq!(cfg.sampler, resolved);
    }

    #[test]
    fn concrete_strategies_pass_through_resolution() {
        let corpus = DatasetProfile::nytimes()
            .scaled_to_tokens(5_000)
            .generate(3);
        let mut cfg = LdaConfig::with_topics(16).sampler(SamplerStrategy::alias_hybrid());
        assert_eq!(
            resolve_auto_sampler(&mut cfg, &corpus),
            SamplerStrategy::alias_hybrid()
        );
    }
}
