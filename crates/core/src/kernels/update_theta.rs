//! The update-θ kernel (§6.2).
//!
//! θ is sparse (CSR), so it cannot be updated in place with atomics.  The
//! paper regenerates it per document in two steps: (1) scatter the document's
//! token topics into a dense per-document array with atomic adds, using the
//! document–word map built at preprocessing time to find the document's
//! tokens inside the word-major chunk; (2) compact the dense array back into
//! a CSR row with a prefix sum.
//!
//! The simulator performs the same computation per document (functionally a
//! counting sort over the document's topics) and accounts the dense-scatter
//! atomics, the map lookups and the compaction traffic.  Each thread block
//! owns a contiguous range of documents and deposits its finished rows into
//! its own output slot; the host then stitches the slots into the chunk's new
//! θ replica (the device would write the rows directly into the CSR arrays
//! at offsets produced by the prefix sum).

use crate::model::ChunkState;
use culda_gpusim::{BlockCtx, BlockKernel};
use culda_sparse::CsrBuilder;
use parking_lot::Mutex;
use std::sync::atomic::Ordering;

/// One document's regenerated θ row: sorted `(topic, count)` pairs.
pub type ThetaRow = Vec<(u16, u32)>;

/// The θ-update kernel for one chunk.
pub struct UpdateThetaKernel<'a> {
    state: &'a ChunkState,
    docs_per_block: usize,
    compress_16bit: bool,
    /// Per-block output slots (block `b` owns slot `b`; no contention).
    rows: Vec<Mutex<Vec<ThetaRow>>>,
}

impl<'a> UpdateThetaKernel<'a> {
    /// Create the kernel; `docs_per_block` documents are assigned to each
    /// thread block (the paper's kernel uses one warp per document with 32
    /// warps per block, i.e. 32 documents per block).
    pub fn new(state: &'a ChunkState, docs_per_block: usize, compress_16bit: bool) -> Self {
        assert!(docs_per_block > 0);
        let num_blocks = state.layout.num_docs().div_ceil(docs_per_block).max(1);
        let mut rows = Vec::with_capacity(num_blocks);
        rows.resize_with(num_blocks, || Mutex::new(Vec::new()));
        UpdateThetaKernel {
            state,
            docs_per_block,
            compress_16bit,
            rows,
        }
    }

    /// Number of thread blocks this kernel launches with.
    pub fn grid_blocks(&self) -> usize {
        self.rows.len()
    }

    /// Assemble the per-block outputs into the chunk's θ replica.
    /// Call after the launch completes.
    pub fn finish(self) {
        let docs = self.state.layout.num_docs();
        let k = self.state.num_topics();
        let mut builder = CsrBuilder::new(docs, k);
        builder.reserve_nnz(self.state.layout.num_tokens().min(docs * k));
        for slot in &self.rows {
            let slot = slot.lock();
            for row in slot.iter() {
                builder.push_row(row.iter().copied());
            }
        }
        *self.state.theta.write() = builder.finish();
    }
}

impl BlockKernel for UpdateThetaKernel<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let state = self.state;
        let k = state.num_topics();
        let int_bytes: u64 = if self.compress_16bit { 2 } else { 4 };
        let doc_start = block_id * self.docs_per_block;
        let doc_end = (doc_start + self.docs_per_block).min(state.layout.num_docs());
        if doc_start >= doc_end {
            return;
        }

        let mut out = Vec::with_capacity(doc_end - doc_start);
        let mut scratch: Vec<u16> = Vec::new();
        for d in doc_start..doc_end {
            let positions = state.layout.doc_positions(d);
            // Step 1: dense scatter — one atomic add per token, plus reading
            // the document–word map entry and the token's topic.
            scratch.clear();
            scratch.extend(
                positions
                    .iter()
                    .map(|&p| state.z[p as usize].load(Ordering::Relaxed)),
            );
            ctx.read_global(positions.len() as u64 * (4 + int_bytes));
            ctx.atomics(positions.len() as u64);

            // Step 2: compact the dense row into CSR via a prefix sum — the
            // device scans the K-length dense row and writes K_d entries.
            scratch.sort_unstable();
            let mut row: ThetaRow = Vec::new();
            let mut i = 0usize;
            while i < scratch.len() {
                let t = scratch[i];
                let mut j = i + 1;
                while j < scratch.len() && scratch[j] == t {
                    j += 1;
                }
                row.push((t, (j - i) as u32));
                i = j;
            }
            ctx.read_global(k as u64 * 4); // scan of the dense scratch row
            ctx.int_ops(k as u64 / 32 + 1); // warp-level prefix sum steps
            ctx.write_global(row.len() as u64 * (int_bytes + 4) + 8); // CSR row + row_ptr
            out.push(row);
        }
        *self.rows[block_id].lock() = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LdaConfig;
    use crate::model::ChunkState;
    use culda_corpus::{partition::DocRange, ChunkLayout, DatasetProfile};
    use culda_gpusim::{Device, DeviceSpec, LaunchConfig};

    fn init_state(k: usize, seed: u64) -> ChunkState {
        let corpus = DatasetProfile {
            name: "t".into(),
            num_docs: 50,
            vocab_size: 70,
            avg_doc_len: 20.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.5,
        }
        .generate(seed);
        let layout = ChunkLayout::build(
            &corpus,
            DocRange {
                start: 0,
                end: corpus.num_docs(),
            },
        );
        let state = ChunkState::new(0, layout, k);
        let cfg = LdaConfig::with_topics(k);
        let mut x = seed as u32 | 1;
        state.random_init(&cfg, move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 16) as u16
        });
        state
    }

    #[test]
    fn rebuilt_theta_matches_reference_rebuild() {
        let state = init_state(8, 2);
        // Change some assignments so the kernel has real work to do.
        for (i, z) in state.z.iter().enumerate() {
            if i % 3 == 0 {
                z.store((z.load(Ordering::Relaxed) + 2) % 8, Ordering::Relaxed);
            }
        }
        let dev = Device::new(0, DeviceSpec::titan_x_maxwell(), 6);
        let kernel = UpdateThetaKernel::new(&state, 8, true);
        let grid = kernel.grid_blocks();
        dev.launch("Update theta", LaunchConfig::new(grid), &kernel);
        kernel.finish();
        let from_kernel = state.theta.read().clone();

        // Reference: the simple host-side rebuild.
        state.rebuild_theta();
        assert_eq!(from_kernel, *state.theta.read());
        from_kernel.validate().unwrap();
        // Row sums equal document lengths.
        for d in 0..state.layout.num_docs() {
            assert_eq!(from_kernel.row_sum(d), state.layout.doc_len(d) as u64);
        }
    }

    #[test]
    fn grid_covers_all_documents_for_any_block_size() {
        let state = init_state(4, 9);
        for &dpb in &[1usize, 7, 32, 1000] {
            let kernel = UpdateThetaKernel::new(&state, dpb, true);
            let dev = Device::new(0, DeviceSpec::v100_volta(), 1);
            dev.launch(
                "Update theta",
                LaunchConfig::new(kernel.grid_blocks()),
                &kernel,
            );
            kernel.finish();
            assert_eq!(state.theta.read().rows(), state.layout.num_docs());
            assert_eq!(state.theta.read().total(), state.num_tokens() as u64);
        }
    }

    #[test]
    fn atomic_count_equals_token_count() {
        let state = init_state(4, 12);
        let kernel = UpdateThetaKernel::new(&state, 16, true);
        let dev = Device::new(0, DeviceSpec::titan_xp_pascal(), 2);
        let stats = dev.launch(
            "Update theta",
            LaunchConfig::new(kernel.grid_blocks()),
            &kernel,
        );
        // Step 1 issues exactly one atomic per token (the dense scatter).
        assert_eq!(stats.counters.atomic_ops, state.num_tokens() as u64);
        kernel.finish();
    }
}
