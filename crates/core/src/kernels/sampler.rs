//! The pluggable sampler-kernel API.
//!
//! PR 4 put session construction behind [`crate::session::SessionBuilder`];
//! this module does the same for the *kernel layer*: the scheduler no longer
//! hard-codes the §6.1 S/Q-split kernel but drives any [`SamplerKernel`],
//! selected through [`LdaConfig::sampler`] ([`SamplerStrategy`]).  Two
//! implementations ship today:
//!
//! * [`SparseCgsSampler`](crate::kernels::SparseCgsSampler) — the paper's
//!   exact collapsed Gibbs kernel (the default);
//! * [`AliasHybridSampler`](crate::kernels::AliasHybridSampler) — stale
//!   per-word alias tables with a Metropolis–Hastings correction
//!   (AliasLDA-style), closing the ROADMAP's alias-table hybrid item.
//!
//! A sampler owns three responsibilities (`DESIGN.md` §10):
//!
//! 1. **Per-chunk state** — [`SamplerKernel::prepare_chunk`] runs whatever
//!    periodic device work the strategy needs (e.g. the stale alias-table
//!    rebuild) and reports its simulated span so the scheduler can charge it.
//! 2. **Block work** — [`SamplerKernel::sampling_kernel`] emits the
//!    per-thread-block [`BlockKernel`] for one chunk's work items; the
//!    scheduler launches it under [`SamplerKernel::name`].
//! 3. **Cost-model feedback** — [`SamplerKernel::predict_steady_compute_s`]
//!    converts iteration 0's measured spans into the steady-state compute
//!    span (amortising periodic setup), which feeds the φ-sync shard
//!    auto-tuner's span prediction.
//!
//! Streaming burn-in routes through the same trait
//! ([`SamplerKernel::burn_in_sweep`]), so an ingested document is burnt in
//! by the *same sampler family* that will train it — and every draw stays a
//! counter-based pure function of `(seed, stream, uid, slot)`, preserving
//! the ingestion-batching and topology bit-exactness contract for every
//! strategy.

use crate::config::{LdaConfig, SamplerStrategy};
use crate::model::ChunkState;
use crate::work::WorkItem;
use culda_gpusim::{BlockKernel, Device};
use culda_sparse::DenseMatrix;
use std::sync::Arc;

/// RNG stream tag of the first streaming burn-in sweep; sweep `s` uses
/// `BURN_STREAM_BASE - s`.  Training iterations tag their streams with the
/// iteration number (counting up from 0) and the stable initialisation uses
/// `u64::MAX`, so burn-in streams can never collide with either.
pub const BURN_STREAM_BASE: u64 = u64::MAX - 2;

/// Portable sampler-internal state a checkpoint carries so that resuming
/// mid-cadence is bit-exact.
///
/// The model state (`z`, φ, θ, the iteration counter) reconstructs every
/// *memoryless* sampler exactly, but a strategy that keeps state *between*
/// iterations — the alias hybrid's stale tables, rebuilt only every
/// `rebuild_every` iterations — would otherwise restart that state fresh on
/// resume and diverge from the uninterrupted run until the next rebuild.
/// [`SamplerKernel::resume_state`] captures the inputs needed to reconstruct
/// that state exactly, and [`SamplerKernel::restore_resume_state`] replays
/// them into a freshly built sampler.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerResumeState {
    /// The global snapshot the alias hybrid's stale tables were last built
    /// from.  Per-chunk proposal tables are deterministically reconstructed
    /// from it (the same `(φ̂ + β) / (n̂ + Vβ)` arithmetic as the build
    /// kernel), so they do not need to be serialized themselves.
    AliasTables {
        /// Iteration the tables were built at; resume keeps the rebuild
        /// cadence anchored to the original grid.
        built_at: u64,
        /// The synchronized φ at `built_at` (`K × V`).
        phi_hat: DenseMatrix<u32>,
        /// The topic totals at `built_at`.
        nk_hat: Vec<i64>,
    },
    /// The global snapshot the LightLDA sampler's stale word proposals were
    /// last built from.  Word proposals depend only on `φ̂ + β` (the
    /// normalizer cancels in the MH acceptance ratio), so no topic totals
    /// are carried; per-chunk tables are reconstructed deterministically on
    /// resume exactly as the alias hybrid's are.
    LightWordTables {
        /// Iteration the word proposals were built at; resume keeps the
        /// rebuild cadence anchored to the original grid.
        built_at: u64,
        /// The synchronized φ at `built_at` (`K × V`).
        phi_hat: DenseMatrix<u32>,
    },
}

/// A pluggable sampling-kernel implementation.
///
/// Implementations must be deterministic: every random draw — on the device
/// and in [`SamplerKernel::burn_in_sweep`] — must be a counter-based pure
/// function of the token's partition-independent identity, never of block,
/// device, topology or ingestion batching.
pub trait SamplerKernel: Send + Sync {
    /// Profiling name of the per-iteration sampling launch (Table 5 key).
    fn name(&self) -> &'static str;

    /// Run this iteration's per-chunk setup work on `device` (e.g. a stale
    /// alias-table rebuild) and return its simulated span in seconds.  The
    /// default does nothing and costs nothing.
    fn prepare_chunk(
        &self,
        device: &Device,
        state: &ChunkState,
        config: &LdaConfig,
        iteration: u64,
    ) -> f64 {
        let _ = (device, state, config, iteration);
        0.0
    }

    /// The per-block sampling work for one chunk at `iteration`
    /// ([`crate::work::build_work_items`] defines the block ↔ token-range
    /// mapping).  Launched by the scheduler as one thread block per item.
    fn sampling_kernel<'a>(
        &'a self,
        state: &'a ChunkState,
        items: &'a [WorkItem],
        config: &'a LdaConfig,
        iteration: u64,
    ) -> Box<dyn BlockKernel + 'a>;

    /// The sampler-internal state a checkpoint must carry for a mid-cadence
    /// resume to be bit-exact, or `None` for memoryless strategies (the
    /// default) and for samplers that have not built any state yet.
    fn resume_state(&self) -> Option<SamplerResumeState> {
        None
    }

    /// Replay a [`SamplerResumeState`] captured by
    /// [`SamplerKernel::resume_state`] into this (freshly constructed)
    /// sampler.  The default ignores the state, which is correct for
    /// memoryless strategies.
    fn restore_resume_state(&self, state: &SamplerResumeState) {
        let _ = state;
    }

    /// Predict the steady-state per-iteration compute span from iteration
    /// 0's measured compute and setup spans, amortising periodic setup work
    /// over its cadence.  The φ-sync shard auto-tuner predicts overlap spans
    /// with this value, so a sampler whose iteration 0 included a full
    /// rebuild does not mislead the tuner about later iterations.
    fn predict_steady_compute_s(&self, measured_compute_s: f64, measured_setup_s: f64) -> f64 {
        let _ = measured_setup_s;
        measured_compute_s
    }

    /// One host-side streaming burn-in sweep over a freshly ingested
    /// document: resample every token of `words` against the live global
    /// (`phi`, `nk`) counts, updating `z` and the document's topic histogram
    /// `theta_d` in place.  Sweep `sweep` must draw only from RNG streams
    /// derived from [`BURN_STREAM_BASE`]`- sweep` keyed by `(uid, slot)`.
    #[allow(clippy::too_many_arguments)]
    fn burn_in_sweep(
        &self,
        config: &LdaConfig,
        uid: u64,
        sweep: usize,
        words: &[u32],
        z: &mut [u16],
        theta_d: &mut [u32],
        phi: &mut DenseMatrix<u32>,
        nk: &mut [i64],
    );
}

/// Instantiate the sampler kernel a configuration selects.
///
/// The configuration's strategy must already be concrete:
/// [`SamplerStrategy::Auto`] is resolved by every construction path
/// (trainer build, streaming session, checkpoint resume) *before* a kernel
/// is instantiated — see [`crate::kernels::portfolio`].
pub fn sampler_for(config: &LdaConfig) -> Arc<dyn SamplerKernel> {
    sampler_for_strategy(config.sampler)
}

/// Instantiate the sampler kernel for a concrete strategy.
///
/// # Panics
///
/// Panics on [`SamplerStrategy::Auto`]: auto-selection is a construction-time
/// decision ([`crate::kernels::portfolio::auto_select_sampler`]), never a
/// kernel.
pub fn sampler_for_strategy(strategy: SamplerStrategy) -> Arc<dyn SamplerKernel> {
    match strategy {
        SamplerStrategy::SparseCgs => Arc::new(crate::kernels::SparseCgsSampler),
        SamplerStrategy::AliasHybrid {
            rebuild_every,
            mh_steps,
        } => Arc::new(crate::kernels::AliasHybridSampler::new(
            rebuild_every,
            mh_steps,
        )),
        SamplerStrategy::LightLda {
            rebuild_every,
            mh_steps,
            prune_below,
        } => Arc::new(crate::kernels::LightLdaSampler::new(
            rebuild_every,
            mh_steps,
            prune_below,
        )),
        SamplerStrategy::Auto => panic!(
            "SamplerStrategy::Auto must be resolved to a concrete strategy \
             before a kernel is instantiated"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_matches_the_strategy() {
        let sparse = sampler_for(&LdaConfig::with_topics(8));
        assert_eq!(sparse.name(), crate::kernels::names::SAMPLING);
        let alias =
            sampler_for(&LdaConfig::with_topics(8).sampler(SamplerStrategy::alias_hybrid()));
        assert_eq!(alias.name(), crate::kernels::names::SAMPLING);
        let light = sampler_for(&LdaConfig::with_topics(8).sampler(SamplerStrategy::light_lda()));
        assert_eq!(light.name(), crate::kernels::names::SAMPLING);
        // Setup is free for the default sampler and its steady-state
        // prediction is the identity.
        assert_eq!(sparse.predict_steady_compute_s(2.0, 0.5), 2.0);
        assert_eq!(alias.predict_steady_compute_s(2.0, 0.5), 1.5625);
        // Light amortises its rebuild over the same cadence formula.
        assert_eq!(light.predict_steady_compute_s(2.0, 0.5), 1.5625);
    }

    #[test]
    #[should_panic(expected = "Auto must be resolved")]
    fn factory_rejects_unresolved_auto() {
        let _ = sampler_for_strategy(SamplerStrategy::Auto);
    }
}
