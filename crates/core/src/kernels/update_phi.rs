//! The update-φ kernel (§6.2).
//!
//! φ is dense, so the update is a stream of atomic adds.  Because the chunk
//! is sorted in word-major order, consecutive tokens touch the same φ column,
//! giving the atomics the locality the paper relies on ("atomic functions
//! that have good data locality shows good performance").
//!
//! The kernel folds the `z → z_next` differences of this iteration into the
//! chunk's `phi_local` replica and topic totals, then promotes `z_next` to be
//! the current assignment.  φ is updated *before* θ so the φ synchronization
//! can start as early as possible and overlap with the θ update (§6.2).

use crate::model::ChunkState;
use crate::work::WorkItem;
use culda_gpusim::{BlockCtx, BlockKernel};
use std::sync::atomic::Ordering;

/// The φ-update kernel for one chunk.
pub struct UpdatePhiKernel<'a> {
    /// Chunk whose counts are being updated.
    pub state: &'a ChunkState,
    /// The same word-major work items the sampling kernel used.
    pub items: &'a [WorkItem],
    /// Whether φ entries are stored 16-bit compressed (§6.1.3).
    pub compress_16bit: bool,
}

impl BlockKernel for UpdatePhiKernel<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let item = &self.items[block_id];
        let state = self.state;
        let v = item.word as usize;
        let int_bytes: u64 = if self.compress_16bit { 2 } else { 4 };

        for pos in item.start..item.end {
            let pos = pos as usize;
            let old = state.z[pos].load(Ordering::Relaxed);
            let new = state.z_next[pos].load(Ordering::Relaxed);
            // Reading both assignments (old and proposed).
            ctx.read_global(2 * int_bytes);
            if old != new {
                state.phi_local.fetch_sub(old as usize, v, 1);
                state.phi_local.fetch_add(new as usize, v, 1);
                state.nk_local.add(old as usize, -1);
                state.nk_local.add(new as usize, 1);
                // Two φ atomics + two n_k atomics.
                ctx.atomics(4);
            }
            // Promote the proposal to the current assignment.
            state.z[pos].store(new, Ordering::Relaxed);
            ctx.write_global(int_bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LdaConfig;
    use crate::model::ChunkState;
    use crate::work::build_work_items;
    use culda_corpus::{partition::DocRange, ChunkLayout, DatasetProfile};
    use culda_gpusim::{Device, DeviceSpec, LaunchConfig};

    fn init_state(k: usize) -> ChunkState {
        let corpus = DatasetProfile {
            name: "t".into(),
            num_docs: 40,
            vocab_size: 80,
            avg_doc_len: 25.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(21);
        let layout = ChunkLayout::build(
            &corpus,
            DocRange {
                start: 0,
                end: corpus.num_docs(),
            },
        );
        let state = ChunkState::new(0, layout, k);
        let cfg = LdaConfig::with_topics(k);
        let mut x = 3u32;
        state.random_init(&cfg, move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 16) as u16
        });
        state
    }

    #[test]
    fn delta_update_matches_full_rebuild() {
        let state = init_state(6);
        // Propose new assignments: rotate every token's topic by one.
        for (pos, zn) in state.z_next.iter().enumerate() {
            let old = state.z[pos].load(Ordering::Relaxed);
            zn.store((old + 1) % 6, Ordering::Relaxed);
        }
        let items = build_work_items(&state.layout, 2048);
        let dev = Device::new(0, DeviceSpec::titan_xp_pascal(), 4);
        let kernel = UpdatePhiKernel {
            state: &state,
            items: &items,
            compress_16bit: true,
        };
        dev.launch("Update phi", LaunchConfig::new(items.len()), &kernel);

        // The delta-updated phi_local must equal a from-scratch recount.
        let incremental = state.phi_local.to_dense();
        let nk_incremental = state.nk_local.to_vec();
        state.rebuild_phi_local();
        assert_eq!(incremental, state.phi_local.to_dense());
        assert_eq!(nk_incremental, state.nk_local.to_vec());
        // And z must now hold the promoted assignments.
        for (z, zn) in state.z.iter().zip(&state.z_next) {
            assert_eq!(z.load(Ordering::Relaxed), zn.load(Ordering::Relaxed));
        }
    }

    #[test]
    fn unchanged_assignments_cost_no_atomics() {
        let state = init_state(4);
        // z_next equals z after random_init.
        let items = build_work_items(&state.layout, 2048);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 4);
        let kernel = UpdatePhiKernel {
            state: &state,
            items: &items,
            compress_16bit: true,
        };
        let stats = dev.launch("Update phi", LaunchConfig::new(items.len()), &kernel);
        assert_eq!(stats.counters.atomic_ops, 0);
        assert!(stats.counters.dram_read_bytes > 0);
        state.validate_counts().unwrap();
    }

    #[test]
    fn compression_halves_assignment_traffic() {
        let state = init_state(4);
        let items = build_work_items(&state.layout, 2048);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 4);
        let small = dev
            .launch(
                "Update phi",
                LaunchConfig::new(items.len()),
                &UpdatePhiKernel {
                    state: &state,
                    items: &items,
                    compress_16bit: true,
                },
            )
            .counters;
        let big = dev
            .launch(
                "Update phi",
                LaunchConfig::new(items.len()),
                &UpdatePhiKernel {
                    state: &state,
                    items: &items,
                    compress_16bit: false,
                },
            )
            .counters;
        assert_eq!(small.dram_read_bytes * 2, big.dram_read_bytes);
        assert_eq!(small.dram_write_bytes * 2, big.dram_write_bytes);
    }
}
