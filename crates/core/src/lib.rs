//! # culda-core
//!
//! The primary contribution of *CuLDA_CGS: Solving Large-scale LDA Problems
//! on GPUs* (PPoPP 2019): a sparsity-aware, tree-based collapsed Gibbs
//! sampling trainer for LDA that scales across multiple (simulated) GPUs.
//!
//! The crate is organised along the paper's structure:
//!
//! | paper section | module |
//! |---|---|
//! | §4 workload partition (partition-by-document, token-balanced chunks) | [`trainer`] + `culda_corpus::partition` |
//! | §5.1 scheduling algorithm (`WorkSchedule1`/`WorkSchedule2`) | [`schedule`] |
//! | §5.2 φ synchronization (tree reduce + broadcast; dense or vocabulary-sharded with sampling overlap, DESIGN.md §8; two-tier hierarchical on multi-node clusters, DESIGN.md §14) | [`sync`] |
//! | §6.1 sampling kernel (sparsity-aware S/Q decomposition, 32-way index trees, warp-per-sampler, shared p2 tree, p*(k) reuse, 16-bit compression) | [`kernels::sampling`], [`work`] |
//! | pluggable sampler kernels (trait API + stale-alias/MH hybrid, DESIGN.md §10) | [`kernels::sampler`], [`kernels::alias_hybrid`] |
//! | §6.2 model update kernels (atomic φ update, dense-scatter + prefix-sum θ rebuild) | [`kernels::update_phi`], [`kernels::update_theta`] |
//! | training loop / public API | [`session::SessionBuilder`], [`trainer::CuLdaTrainer`], [`config::LdaConfig`] |
//! | streaming/online training (ingest · retire · rotate, DESIGN.md §9) | [`session::StreamingSession`] |
//!
//! Beyond the paper's training loop, the crate also provides the serving
//! path a production deployment needs: fold-in [`inference`] for unseen
//! documents, model [`checkpoint`]s, Minka fixed-point [`hyper`]-parameter
//! optimisation and [`convergence`] detection / early stopping (see
//! `DESIGN.md` §6 for the rationale).
//!
//! The GPU itself is provided by the [`culda_gpusim`] substrate: kernels
//! execute functionally on the host thread pool while their memory traffic,
//! arithmetic and atomics are accounted and converted into simulated time by
//! a roofline model, which is how the paper's performance results are
//! reproduced without CUDA hardware (see `DESIGN.md` at the repository root).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod convergence;
pub mod hyper;
pub mod inference;
pub mod kernels;
pub mod model;
pub mod schedule;
pub mod serve;
pub mod session;
pub mod sync;
pub mod trainer;
pub mod work;

pub use checkpoint::{CheckpointError, ModelCheckpoint};
pub use config::{LdaConfig, SamplerStrategy};
pub use convergence::{train_until_converged, ConvergenceMonitor, EarlyStopper};
pub use hyper::{optimize_alpha, optimize_beta, HyperOptOptions, HyperUpdate};
pub use inference::{DocumentTopics, InferenceError, InferenceOptions, TopicInferencer};
pub use kernels::{
    auto_select_sampler, sampler_for, sampler_for_strategy, AliasHybridSampler, ChunkStatistics,
    LightLdaSampler, SamplerKernel, SamplerResumeState, SparseCgsSampler,
};
pub use model::{ChunkState, TopicTotals};
pub use schedule::{IterationStats, ScheduleKind};
pub use serve::{BatchReply, ModelSnapshots, QueryStats, ServeError};
pub use session::{
    SessionBuilder, SessionError, SessionStats, StreamingOptions, StreamingSession, TrainingSession,
};
pub use sync::{
    synchronize_phi, synchronize_phi_hier_sharded, synchronize_phi_sharded, HierarchicalSyncPlan,
    ShardedSyncStats, SyncPlan, SyncStats,
};
pub use trainer::{CuLdaTrainer, TrainerError};
pub use work::{build_work_items, WorkItem};
