//! Model state: per-chunk replicas of θ and φ (Figure 3(a)).
//!
//! With partition-by-document, every chunk owns the θ rows of its documents
//! exclusively, while φ is replicated: each replica accumulates the counts
//! contributed by its own chunk's tokens (`phi_local`), and the synchronized
//! global matrix (`phi_global = Σ_c phi_local[c]`) is what the samplers read.

use crate::config::LdaConfig;
use culda_corpus::ChunkLayout;
use culda_sparse::{AtomicMatrix, CsrBuilder, CsrMatrix};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicI64, AtomicU16, Ordering};

/// Atomic per-topic totals `n_k` (64-bit: billion-token corpora overflow u32).
#[derive(Debug)]
pub struct TopicTotals {
    counts: Vec<AtomicI64>,
}

impl TopicTotals {
    /// `k` zero-initialised totals.
    pub fn zeros(k: usize) -> Self {
        let mut counts = Vec::with_capacity(k);
        counts.resize_with(k, || AtomicI64::new(0));
        TopicTotals { counts }
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when there are no topics (never in practice).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Relaxed load of `n_k`.
    #[inline]
    pub fn get(&self, k: usize) -> i64 {
        self.counts[k].load(Ordering::Relaxed)
    }

    /// Atomic add.
    #[inline]
    pub fn add(&self, k: usize, delta: i64) {
        self.counts[k].fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrite all totals.
    pub fn store_all(&self, values: &[i64]) {
        assert_eq!(values.len(), self.counts.len());
        for (c, &v) in self.counts.iter().zip(values) {
            c.store(v, Ordering::Relaxed);
        }
    }

    /// Reset to zero.
    pub fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot.
    pub fn to_vec(&self) -> Vec<i64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of all totals (equals the number of tokens covered).
    pub fn total(&self) -> i64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// All device-resident state for one corpus chunk (Figure 3: the chunk, its θ
/// replica, its φ replica, and the synchronized φ it samples from).
#[derive(Debug)]
pub struct ChunkState {
    /// Chunk index within the run.
    pub chunk_id: usize,
    /// Preprocessed word-major layout (built on the CPU, §6.1.2/§6.2).
    pub layout: ChunkLayout,
    /// Current topic assignment of every token, in word-major order
    /// (16-bit compressed, §6.1.3).
    pub z: Vec<AtomicU16>,
    /// Topic assignments proposed by the current iteration's sampling kernel;
    /// the update-φ kernel folds the `z → z_next` deltas into `phi_local` and
    /// then promotes `z_next` to `z`.
    pub z_next: Vec<AtomicU16>,
    /// θ rows of this chunk's documents (CSR with 16-bit topic columns).
    /// Rebuilt by the update-θ kernel after every iteration.
    pub theta: RwLock<CsrMatrix>,
    /// This chunk's contribution to φ (`K × V`), rebuilt each iteration by
    /// the update-φ kernel.
    pub phi_local: AtomicMatrix,
    /// This chunk's contribution to the topic totals `n_k`.
    pub nk_local: TopicTotals,
    /// The synchronized global φ the sampling kernel reads
    /// (`Σ` of every chunk's `phi_local` after the reduce+broadcast of §5.2).
    pub phi_global: AtomicMatrix,
    /// The synchronized global topic totals.
    pub nk_global: TopicTotals,
    /// For every word-major position, the token's index within its document
    /// (see [`ChunkLayout::token_slots`]); combined with the global document
    /// id this keys the counter-based sampling RNG.
    pub token_slot: Vec<u32>,
}

impl ChunkState {
    /// Allocate the state for a chunk, with all counts zero and all topic
    /// assignments set to topic 0 (callers run [`ChunkState::random_init`]).
    pub fn new(chunk_id: usize, layout: ChunkLayout, num_topics: usize) -> Self {
        let vocab = layout.vocab_size;
        let tokens = layout.num_tokens();
        let docs = layout.num_docs();
        let mut z = Vec::with_capacity(tokens);
        z.resize_with(tokens, || AtomicU16::new(0));
        let mut z_next = Vec::with_capacity(tokens);
        z_next.resize_with(tokens, || AtomicU16::new(0));
        let token_slot = layout.token_slots();
        ChunkState {
            chunk_id,
            layout,
            token_slot,
            z,
            z_next,
            theta: RwLock::new(CsrMatrix::zeros(docs, num_topics)),
            phi_local: AtomicMatrix::zeros(num_topics, vocab),
            nk_local: TopicTotals::zeros(num_topics),
            phi_global: AtomicMatrix::zeros(num_topics, vocab),
            nk_global: TopicTotals::zeros(num_topics),
        }
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.phi_local.rows()
    }

    /// Number of tokens in the chunk.
    pub fn num_tokens(&self) -> usize {
        self.z.len()
    }

    /// Randomly assign a topic to every token ("Initially, each token is
    /// randomly assigned with a topic", §2.1), then build the initial θ
    /// replica and local φ counts from those assignments.
    pub fn random_init(&self, config: &LdaConfig, mut rand_topic: impl FnMut() -> u16) {
        let k = self.num_topics();
        debug_assert_eq!(k, config.num_topics);
        // Assign topics and accumulate φ_local / n_k.
        self.phi_local.clear();
        self.nk_local.clear();
        for v in 0..self.layout.vocab_size {
            let (start, end) = self.layout.word_token_range(v);
            for pos in start..end {
                let topic = rand_topic() % k as u16;
                self.z[pos].store(topic, Ordering::Relaxed);
                self.z_next[pos].store(topic, Ordering::Relaxed);
                self.phi_local.fetch_add(topic as usize, v, 1);
                self.nk_local.add(topic as usize, 1);
            }
        }
        self.rebuild_theta();
    }

    /// Randomly assign topics with the counter-based generator keyed by each
    /// token's partition-independent identity `(global document, slot)`.
    ///
    /// Unlike [`ChunkState::random_init`] (whose stream depends on the order
    /// the closure is polled in, i.e. on the chunk layout), this produces the
    /// *same* initial assignment for every token no matter how the corpus is
    /// partitioned — the foundation of the cross-topology determinism
    /// guarantee.
    pub fn random_init_stable(&self, config: &LdaConfig, seed: u64) {
        let k = self.num_topics() as u64;
        debug_assert_eq!(k as usize, config.num_topics);
        self.phi_local.clear();
        self.nk_local.clear();
        for d in 0..self.layout.num_docs() {
            let global_doc = (self.layout.range.start + d) as u64;
            for (t, &pos) in self.layout.doc_positions(d).iter().enumerate() {
                let draw = culda_gpusim::rng::stable_u64(
                    seed,
                    Self::INIT_STREAM,
                    (global_doc << 32) | t as u64,
                );
                let topic = (draw % k) as u16;
                let pos = pos as usize;
                self.z[pos].store(topic, Ordering::Relaxed);
                self.z_next[pos].store(topic, Ordering::Relaxed);
                let v = self.layout.word_of_position(pos as u32) as usize;
                self.phi_local.fetch_add(topic as usize, v, 1);
                self.nk_local.add(topic as usize, 1);
            }
        }
        self.rebuild_theta();
    }

    /// RNG stream tag for the initial assignment (iteration numbers, which
    /// tag the sampling streams, start at 0 and stay far below this).
    pub const INIT_STREAM: u64 = u64::MAX;

    /// Initialise the chunk's assignments from an explicit per-document
    /// topic snapshot (`z[global_doc][token]`, original token order) — the
    /// resume path: a trainer rebuilt from a checkpoint's `z` continues
    /// exactly where the saved run stopped.
    ///
    /// Callers must have validated that the snapshot covers this chunk's
    /// documents with the right lengths and in-range topics.
    pub fn init_from_assignments(&self, z: &[Vec<u16>]) {
        self.phi_local.clear();
        self.nk_local.clear();
        for d in 0..self.layout.num_docs() {
            let row = &z[self.layout.range.start + d];
            for (t, &pos) in self.layout.doc_positions(d).iter().enumerate() {
                let topic = row[t];
                let pos = pos as usize;
                self.z[pos].store(topic, Ordering::Relaxed);
                self.z_next[pos].store(topic, Ordering::Relaxed);
                let v = self.layout.word_of_position(pos as u32) as usize;
                self.phi_local.fetch_add(topic as usize, v, 1);
                self.nk_local.add(topic as usize, 1);
            }
        }
        self.rebuild_theta();
    }

    /// Rebuild the θ replica from the current topic assignments (the
    /// functional core of the update-θ kernel; the kernel additionally
    /// accounts the cost of doing this on the device).
    pub fn rebuild_theta(&self) {
        let k = self.num_topics();
        let docs = self.layout.num_docs();
        let mut builder = CsrBuilder::new(docs, k);
        builder.reserve_nnz(self.layout.num_tokens().min(docs * k));
        let mut scratch: Vec<(u16, u32)> = Vec::new();
        for d in 0..docs {
            scratch.clear();
            for &pos in self.layout.doc_positions(d) {
                let topic = self.z[pos as usize].load(Ordering::Relaxed);
                scratch.push((topic, 1));
            }
            builder.push_row(scratch.iter().copied());
        }
        *self.theta.write() = builder.finish();
    }

    /// Recount this chunk's φ contribution from the current assignments (the
    /// functional core of the update-φ kernel).
    pub fn rebuild_phi_local(&self) {
        self.phi_local.clear();
        self.nk_local.clear();
        for v in 0..self.layout.vocab_size {
            let (start, end) = self.layout.word_token_range(v);
            for pos in start..end {
                let topic = self.z[pos].load(Ordering::Relaxed) as usize;
                self.phi_local.fetch_add(topic, v, 1);
                self.nk_local.add(topic, 1);
            }
        }
    }

    /// Estimated device-memory footprint in bytes (chunk layout + z + θ + two
    /// φ replicas with 16-bit compression when enabled).
    pub fn device_bytes(&self, compress_16bit: bool) -> u64 {
        let phi = if compress_16bit {
            self.phi_local.device_bytes_compressed() + self.phi_global.device_bytes_compressed()
        } else {
            self.phi_local.device_bytes_uncompressed() + self.phi_global.device_bytes_uncompressed()
        };
        self.layout.device_bytes()
            + self.theta.read().device_bytes()
            + phi
            + (self.num_topics() * 8) as u64 * 2
    }

    /// Consistency check: θ row sums must equal document lengths, φ_local
    /// totals must equal the chunk token count, and every count must be
    /// reproducible from `z`.  Used by tests and debug assertions.
    pub fn validate_counts(&self) -> Result<(), String> {
        let theta = self.theta.read();
        for d in 0..self.layout.num_docs() {
            let expect = self.layout.doc_len(d) as u64;
            let got = theta.row_sum(d);
            if expect != got {
                return Err(format!(
                    "θ row {d} sums to {got}, document has {expect} tokens"
                ));
            }
        }
        let total: i64 = self.nk_local.total();
        if total != self.num_tokens() as i64 {
            return Err(format!(
                "n_k totals {total} do not match chunk token count {}",
                self.num_tokens()
            ));
        }
        let phi_total: u64 = self.phi_local.to_dense().total();
        if phi_total != self.num_tokens() as u64 {
            return Err(format!(
                "φ_local total {phi_total} does not match chunk token count {}",
                self.num_tokens()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::{partition::DocRange, CorpusBuilder};

    fn small_state(num_topics: usize) -> ChunkState {
        let mut b = CorpusBuilder::new(6);
        b.push_doc(&[0, 1, 1, 3, 5]);
        b.push_doc(&[2, 2, 4]);
        b.push_doc(&[5, 0]);
        let corpus = b.build();
        let layout = ChunkLayout::build(&corpus, DocRange { start: 0, end: 3 });
        ChunkState::new(0, layout, num_topics)
    }

    #[test]
    fn random_init_produces_consistent_counts() {
        let state = small_state(4);
        let config = LdaConfig::with_topics(4);
        let mut x = 7u32;
        state.random_init(&config, move || {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            (x >> 16) as u16
        });
        state.validate_counts().unwrap();
        assert_eq!(state.num_tokens(), 10);
        assert_eq!(state.nk_local.total(), 10);
        let theta = state.theta.read();
        assert_eq!(theta.total(), 10);
        assert_eq!(theta.rows(), 3);
        assert_eq!(theta.cols(), 4);
    }

    #[test]
    fn rebuild_phi_matches_assignments() {
        let state = small_state(3);
        // Assign every token topic 2.
        for z in &state.z {
            z.store(2, Ordering::Relaxed);
        }
        state.rebuild_phi_local();
        state.rebuild_theta();
        assert_eq!(state.nk_local.get(2), 10);
        assert_eq!(state.nk_local.get(0), 0);
        let theta = state.theta.read();
        assert_eq!(theta.get(0, 2), 5);
        assert_eq!(theta.row_nnz(0), 1);
        state.validate_counts().unwrap();
        // word 1 has 2 tokens, both topic 2.
        assert_eq!(state.phi_local.load(2, 1), 2);
    }

    #[test]
    fn topic_totals_basic_ops() {
        let t = TopicTotals::zeros(3);
        t.add(0, 5);
        t.add(2, 1);
        t.add(0, -2);
        assert_eq!(t.get(0), 3);
        assert_eq!(t.to_vec(), vec![3, 0, 1]);
        assert_eq!(t.total(), 4);
        t.store_all(&[1, 1, 1]);
        assert_eq!(t.total(), 3);
        t.clear();
        assert_eq!(t.total(), 0);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn device_bytes_reflect_compression() {
        let state = small_state(8);
        let compressed = state.device_bytes(true);
        let uncompressed = state.device_bytes(false);
        assert!(uncompressed > compressed);
    }
}
