//! The workload scheduling algorithm (Algorithm 1, §5.1).
//!
//! The corpus is partitioned into `C = M × G` chunks; chunk `i` is processed
//! by GPU `i % G`.  Two procedures are distinguished:
//!
//! * **`WorkSchedule1`** (`M = 1`, [`ScheduleKind::Resident`]): every chunk
//!   stays resident in its GPU's memory for the whole run, so host↔device
//!   transfers happen only before the first and after the last iteration and
//!   are amortised away.
//! * **`WorkSchedule2`** (`M > 1`, [`ScheduleKind::Streamed`]): chunks are
//!   staged over PCIe every iteration; uploads and downloads are overlapped
//!   with compute through double-buffered streams (§5.1), which requires room
//!   for two chunks in device memory.
//!
//! Either way, each iteration ends with the φ synchronization of §5.2, which
//! the θ update is overlapped with (§6.2: "the update of model θ can be
//! overlapped with the synchronization of model ϕ").
//!
//! When the synchronization is vocabulary-sharded ([`crate::sync::SyncPlan`], `S > 1` with
//! a non-zero overlap depth), the iteration additionally overlaps the
//! *reduces themselves* with sampling: the word-major sampling pass emits the
//! vocabulary shards in order, shard `s`'s tree reduce starts as soon as its
//! `update-φ` contribution is complete, and the sampling of shard `s + 1`
//! proceeds concurrently.  All shards still complete before the next
//! iteration reads φ, so the sampled assignments are bit-identical to the
//! dense schedule — only the exposed synchronization time shrinks (see
//! `DESIGN.md` §8).

use crate::config::LdaConfig;
use crate::kernels::{names, SamplerKernel, UpdatePhiKernel, UpdateThetaKernel};
use crate::model::ChunkState;
use crate::sync::{
    global_word_tokens, synchronize_phi_hier_over_ranges, synchronize_phi_hier_sharded,
    HierarchicalSyncPlan,
};
use crate::work::WorkItem;
use culda_gpusim::stream::Stage;
use culda_gpusim::{LaunchConfig, MultiGpuSystem, PipelineModel};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which of Algorithm 1's two procedures is in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleKind {
    /// `M = 1`: chunks are resident on their GPU (`WorkSchedule1`).
    Resident,
    /// `M > 1`: chunks are streamed over PCIe each iteration
    /// (`WorkSchedule2`) with transfer/compute overlap.
    Streamed {
        /// Chunks per GPU (`M`).
        chunks_per_gpu: usize,
    },
}

/// Simulated timing of one training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Total simulated wall-clock time of the iteration.
    pub sim_time_s: f64,
    /// Max-over-devices sampler setup + sampling + update-φ time (the part
    /// that cannot overlap with the synchronization).
    pub compute_time_s: f64,
    /// Max-over-devices per-iteration sampler setup time (e.g. the stale
    /// alias-table rebuild of [`crate::kernels::AliasHybridSampler`]; 0 for
    /// the default sparse-CGS sampler and on non-rebuild iterations).
    /// Included in [`IterationStats::compute_time_s`].
    pub sampler_setup_time_s: f64,
    /// Max-over-devices update-θ time (overlapped with the synchronization).
    pub update_theta_time_s: f64,
    /// φ synchronization (tree reduce + broadcast) interconnect work, summed
    /// over all vocabulary shards.
    pub sync_time_s: f64,
    /// The part of the synchronization the iteration critical path actually
    /// sees after shard reduces are overlapped with sampling.  Equals
    /// `sync_time_s` for the dense schedule (`S = 1` or overlap depth 0).
    pub sync_exposed_time_s: f64,
    /// Host↔device staging time (non-zero only for the streamed schedule).
    pub transfer_time_s: f64,
    /// Bytes the φ sync moved over intra-node links this iteration (all the
    /// sync traffic on a single-node system).
    pub intra_sync_bytes: u64,
    /// Bytes the φ sync moved over the inter-node fabric this iteration
    /// (0 on a single-node system).
    pub inter_sync_bytes: u64,
    /// Tokens sampled this iteration (the whole corpus).
    pub tokens_processed: u64,
}

/// Per-device accumulation of one iteration's kernel times.
#[derive(Debug, Clone, Copy, Default)]
struct DeviceTimes {
    setup_s: f64,
    sampling_s: f64,
    update_phi_s: f64,
    update_theta_s: f64,
    pipeline_s: f64,
    transfer_s: f64,
}

/// Fraction of the corpus tokens whose word falls into each vocabulary shard
/// — the weights the overlap model uses to split the sampling phase into
/// per-shard slices (the sampling kernel is word-major, so the time it
/// spends in a shard tracks the tokens the shard's words own).  Shared with
/// the trainer's shard-count auto-tuner, which predicts spans with the same
/// weights the scheduler will run them with.
pub(crate) fn shard_token_weights(
    word_tokens: &[u64],
    ranges: &[std::ops::Range<usize>],
) -> Vec<f64> {
    let tokens: Vec<u64> = ranges
        .iter()
        .map(|r| word_tokens[r.clone()].iter().sum())
        .collect();
    let total: u64 = tokens.iter().sum();
    if total == 0 {
        return vec![1.0 / ranges.len().max(1) as f64; ranges.len()];
    }
    tokens.iter().map(|&t| t as f64 / total as f64).collect()
}

/// Execute one full pass over all chunks (one iteration of Algorithm 1's
/// inner loop) with `sampler`'s kernel and synchronize φ according to `plan`.
#[allow(clippy::too_many_arguments)]
pub fn run_iteration(
    states: &[Arc<ChunkState>],
    work_items: &[Vec<WorkItem>],
    system: &MultiGpuSystem,
    config: &LdaConfig,
    sampler: &dyn SamplerKernel,
    kind: ScheduleKind,
    plan: &HierarchicalSyncPlan,
    iteration: u64,
) -> IterationStats {
    assert_eq!(states.len(), work_items.len());
    let g = system.num_gpus();

    // Chunk i is processed by GPU i % G, chunks with smaller ids first (§5.1).
    // Devices run on separate OS threads, exactly like the real system;
    // per-device results are safe to compute concurrently because a device
    // only reads the chunks assigned to it and all cross-chunk state (φ̂, n̂k)
    // was synchronized before this point.
    let per_device: Vec<DeviceTimes> = (0..g)
        .into_par_iter()
        .map(|dev_idx| {
            let device = system.device(dev_idx);
            let mut times = DeviceTimes::default();
            let mut stages: Vec<Stage> = Vec::new();
            for (chunk_idx, state) in states.iter().enumerate() {
                if chunk_idx % g != dev_idx {
                    continue;
                }
                let items = &work_items[chunk_idx];
                let mut chunk_compute = 0.0f64;

                // Per-iteration sampler setup (e.g. the stale alias-table
                // rebuild on its cadence); free for the default sampler.
                let setup = sampler.prepare_chunk(device, state, config, iteration);
                times.setup_s += setup;
                chunk_compute += setup;

                // Sampling kernel (whatever implementation the sampler
                // strategy emits).
                if !items.is_empty() {
                    let kernel = sampler.sampling_kernel(state, items, config, iteration);
                    let stats =
                        device.launch(sampler.name(), LaunchConfig::new(items.len()), &kernel);
                    times.sampling_s += stats.time.total_s;
                    chunk_compute += stats.time.total_s;
                }

                // Update φ (word-major atomics; promotes z_next → z).
                if !items.is_empty() {
                    let kernel = UpdatePhiKernel {
                        state,
                        items,
                        compress_16bit: config.compress_16bit,
                    };
                    let stats =
                        device.launch(names::UPDATE_PHI, LaunchConfig::new(items.len()), &kernel);
                    times.update_phi_s += stats.time.total_s;
                    chunk_compute += stats.time.total_s;
                }

                // Update θ (dense scatter + prefix-sum compaction).  The
                // paper assigns one warp per document and 32 documents per
                // block, which is right for corpora with 10^5–10^7 documents;
                // for smaller (scaled) corpora the grid is shrunk so the
                // device still has enough blocks to stay occupied.
                if state.layout.num_docs() > 0 {
                    let saturation =
                        (device.spec.sm_count * device.spec.blocks_per_sm_saturation) as usize;
                    let docs_per_block = (state.layout.num_docs() / saturation.max(1)).clamp(1, 32);
                    let kernel =
                        UpdateThetaKernel::new(state, docs_per_block, config.compress_16bit);
                    let grid = kernel.grid_blocks();
                    let stats =
                        device.launch(names::UPDATE_THETA, LaunchConfig::new(grid), &kernel);
                    kernel.finish();
                    times.update_theta_s += stats.time.total_s;
                    chunk_compute += stats.time.total_s;
                }

                // Streamed schedule: account the staging of this chunk.
                if let ScheduleKind::Streamed { .. } = kind {
                    let chunk_bytes = state.device_bytes(config.compress_16bit);
                    let theta_bytes = state.theta.read().device_bytes();
                    let upload = system.transfer_time_s(chunk_bytes);
                    let download = system.transfer_time_s(theta_bytes);
                    times.transfer_s += upload + download;
                    stages.push(Stage {
                        upload_s: upload,
                        compute_s: chunk_compute,
                        download_s: download,
                    });
                }
            }
            if let ScheduleKind::Streamed { .. } = kind {
                times.pipeline_s = PipelineModel::from_stages(stages).simulate().overlapped_s;
            }
            times
        })
        .collect();

    // Synchronize φ across all chunks (functional + simulated per-shard tree
    // cost).  When the plan overlaps, resolve the word histogram once and
    // reuse it for both the shard boundaries and the compute weights.
    let (sync, weights) = if plan.overlaps() {
        let word_tokens = global_word_tokens(states);
        let ranges = plan.base().token_balanced_ranges(&word_tokens);
        let weights = shard_token_weights(&word_tokens, &ranges);
        let sync =
            synchronize_phi_hier_over_ranges(states, system, ranges, config.compress_16bit, plan);
        (sync, Some(weights))
    } else {
        let sync = synchronize_phi_hier_sharded(states, system, plan, config.compress_16bit);
        (sync, None)
    };
    let sync_total = sync.stats.time_s;

    let max_samp_phi = per_device
        .iter()
        .map(|t| t.setup_s + t.sampling_s + t.update_phi_s)
        .fold(0.0, f64::max);
    let max_setup = per_device.iter().map(|t| t.setup_s).fold(0.0, f64::max);
    let max_theta = per_device
        .iter()
        .map(|t| t.update_theta_s)
        .fold(0.0, f64::max);
    let max_pipeline = per_device.iter().map(|t| t.pipeline_s).fold(0.0, f64::max);
    let max_transfer = per_device.iter().map(|t| t.transfer_s).fold(0.0, f64::max);

    let tokens: u64 = states.iter().map(|s| s.num_tokens() as u64).sum();

    // The compute phase the shard reduces can hide behind: sampling +
    // update-φ for the resident schedule, the whole staged pipeline for the
    // streamed one (its θ/transfer work is already folded in).
    let compute_base = match kind {
        ScheduleKind::Resident => max_samp_phi,
        ScheduleKind::Streamed { .. } => max_pipeline,
    };
    // Span of the sampling phase with the shard reduces scheduled inside it:
    // shard s's reduce starts when its slice of the word-major pass ends.
    let (span, sync_exposed) = if let Some(weights) = &weights {
        let compute_shards: Vec<f64> = weights.iter().map(|w| compute_base * w).collect();
        let span = culda_gpusim::overlapped_span_s(
            &compute_shards,
            &sync.per_shard_time_s,
            plan.overlap_depth(),
        );
        (span, (span - compute_base).max(0.0))
    } else {
        (compute_base + sync_total, sync_total)
    };

    let sim_time_s = match kind {
        // Resident: the θ update overlaps whatever synchronization tail is
        // left after the sampling span.
        ScheduleKind::Resident => span.max(max_samp_phi + max_theta),
        // Streamed: the per-device pipelines (which already include all three
        // kernels and the staging) run concurrently with the shard reduces.
        ScheduleKind::Streamed { .. } => span,
    };

    IterationStats {
        sim_time_s,
        compute_time_s: max_samp_phi,
        sampler_setup_time_s: max_setup,
        update_theta_time_s: max_theta,
        sync_time_s: sync_total,
        sync_exposed_time_s: sync_exposed,
        transfer_time_s: if matches!(kind, ScheduleKind::Streamed { .. }) {
            max_transfer
        } else {
            0.0
        },
        intra_sync_bytes: sync.intra_bytes,
        inter_sync_bytes: sync.inter_bytes,
        tokens_processed: tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::SparseCgsSampler;
    use crate::sync::SyncPlan;
    use crate::work::build_work_items;
    use culda_corpus::{DatasetProfile, Partitioner};
    use culda_gpusim::{DeviceSpec, Interconnect};

    fn setup(
        chunks: usize,
        gpus: usize,
        k: usize,
    ) -> (
        Vec<Arc<ChunkState>>,
        Vec<Vec<WorkItem>>,
        MultiGpuSystem,
        LdaConfig,
    ) {
        let corpus = DatasetProfile {
            name: "sched".into(),
            num_docs: 120,
            vocab_size: 100,
            avg_doc_len: 20.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(17);
        let cfg = LdaConfig::with_topics(k).seed(2);
        let partitioner = Partitioner::by_tokens(&corpus, chunks);
        let states: Vec<Arc<ChunkState>> = partitioner
            .build_layouts(&corpus)
            .into_iter()
            .enumerate()
            .map(|(i, layout)| {
                let st = ChunkState::new(i, layout, k);
                let mut x = 77u32 + i as u32;
                st.random_init(&cfg, move || {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 16) as u16
                });
                Arc::new(st)
            })
            .collect();
        let items: Vec<Vec<WorkItem>> = states
            .iter()
            .map(|s| build_work_items(&s.layout, cfg.max_tokens_per_block))
            .collect();
        let system = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            gpus,
            9,
            Interconnect::Pcie3,
        );
        // Fill every chunk's global φ replica before the first iteration,
        // exactly as the trainer does at construction time.
        crate::sync::synchronize_phi(&states, &system, cfg.compress_16bit);
        (states, items, system, cfg)
    }

    const DENSE: HierarchicalSyncPlan = HierarchicalSyncPlan::dense();

    #[test]
    fn resident_iteration_preserves_count_invariants() {
        let (states, items, system, cfg) = setup(2, 2, 8);
        let total_tokens: usize = states.iter().map(|s| s.num_tokens()).sum();
        let stats = run_iteration(
            &states,
            &items,
            &system,
            &cfg,
            &SparseCgsSampler,
            ScheduleKind::Resident,
            &DENSE,
            0,
        );
        assert_eq!(stats.tokens_processed as usize, total_tokens);
        assert!(stats.sim_time_s > 0.0);
        assert_eq!(stats.transfer_time_s, 0.0);
        for st in &states {
            st.validate_counts().unwrap();
        }
        // Global φ covers the whole corpus after the sync.
        assert_eq!(
            states[0].phi_global.to_dense().total() as usize,
            total_tokens
        );
    }

    #[test]
    fn streamed_iteration_accounts_transfers() {
        let (states, items, system, cfg) = setup(4, 2, 8);
        let stats = run_iteration(
            &states,
            &items,
            &system,
            &cfg,
            &SparseCgsSampler,
            ScheduleKind::Streamed { chunks_per_gpu: 2 },
            &DENSE,
            0,
        );
        assert!(stats.transfer_time_s > 0.0);
        assert!(stats.sim_time_s >= stats.sync_time_s);
        for st in &states {
            st.validate_counts().unwrap();
        }
    }

    #[test]
    fn multi_gpu_iteration_is_faster_than_single_gpu() {
        let (states1, items1, system1, cfg) = setup(1, 1, 8);
        let t1 = run_iteration(
            &states1,
            &items1,
            &system1,
            &cfg,
            &SparseCgsSampler,
            ScheduleKind::Resident,
            &DENSE,
            0,
        );
        let (states4, items4, system4, cfg4) = setup(4, 4, 8);
        let t4 = run_iteration(
            &states4,
            &items4,
            &system4,
            &cfg4,
            &SparseCgsSampler,
            ScheduleKind::Resident,
            &DENSE,
            0,
        );
        assert!(
            t4.compute_time_s < t1.compute_time_s,
            "4-GPU compute {} should beat 1-GPU {}",
            t4.compute_time_s,
            t1.compute_time_s
        );
    }

    #[test]
    fn dense_plan_exposes_the_full_sync_and_overlap_exposes_less() {
        let (states, items, system, cfg) = setup(4, 4, 8);
        let dense = run_iteration(
            &states,
            &items,
            &system,
            &cfg,
            &SparseCgsSampler,
            ScheduleKind::Resident,
            &DENSE,
            0,
        );
        assert_eq!(dense.sync_exposed_time_s, dense.sync_time_s);
        // Single node: every synchronized byte is intra-node traffic.
        assert!(dense.intra_sync_bytes > 0);
        assert_eq!(dense.inter_sync_bytes, 0);

        let plan: HierarchicalSyncPlan = SyncPlan::new(8, 2).into();
        let sharded = run_iteration(
            &states,
            &items,
            &system,
            &cfg,
            &SparseCgsSampler,
            ScheduleKind::Resident,
            &plan,
            1,
        );
        // The exposed time can never exceed the interconnect work, and the
        // total work can only grow (per-shard latencies).  Whether the
        // overlap *wins* depends on the replica size vs the link latency;
        // `tests/sharded_sync.rs` asserts the win at a realistic scale.
        assert!(sharded.sync_exposed_time_s <= sharded.sync_time_s + 1e-12);
        assert!(sharded.sync_time_s >= dense.sync_time_s);
        for st in &states {
            st.validate_counts().unwrap();
        }
    }

    #[test]
    fn zero_depth_sharded_plan_does_not_overlap() {
        let (states, items, system, cfg) = setup(2, 2, 8);
        let plan: HierarchicalSyncPlan = SyncPlan::new(4, 0).into();
        let stats = run_iteration(
            &states,
            &items,
            &system,
            &cfg,
            &SparseCgsSampler,
            ScheduleKind::Resident,
            &plan,
            0,
        );
        assert_eq!(stats.sync_exposed_time_s, stats.sync_time_s);
    }

    #[test]
    fn likelihood_improves_over_iterations() {
        let (states, items, system, cfg) = setup(2, 2, 8);
        let ll = |states: &[Arc<ChunkState>]| {
            // Merge chunk thetas and compute the joint likelihood.
            let mut builder = culda_sparse::CsrBuilder::new(
                states.iter().map(|s| s.layout.num_docs()).sum(),
                cfg.num_topics,
            );
            for st in states {
                let theta = st.theta.read();
                for d in 0..theta.rows() {
                    let (cols, vals) = theta.row(d);
                    builder.push_row(cols.iter().copied().zip(vals.iter().copied()));
                }
            }
            let theta = builder.finish();
            let phi = states[0].phi_global.to_dense();
            let nk = states[0].nk_global.to_vec();
            culda_metrics::log_likelihood(&theta, &phi, &nk, cfg.alpha, cfg.beta).per_token()
        };
        let before = ll(&states);
        for it in 0..8 {
            run_iteration(
                &states,
                &items,
                &system,
                &cfg,
                &SparseCgsSampler,
                ScheduleKind::Resident,
                &DENSE,
                it,
            );
        }
        let after = ll(&states);
        assert!(
            after > before,
            "log-likelihood should improve: {before} → {after}"
        );
    }
}
