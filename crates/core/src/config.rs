//! Trainer configuration.

use serde::{Deserialize, Serialize};

/// Which sampler-kernel implementation a run uses (see
/// [`crate::kernels::SamplerKernel`] and `DESIGN.md` §10).
///
/// Every variant honours the same determinism contract — draws are
/// counter-based pure functions of token identity — so any strategy is
/// bit-exact across runs, GPU topologies and streaming ingestion batchings.
/// Different strategies are different (each internally deterministic)
/// trajectories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplerStrategy {
    /// The paper's §6.1 S/Q-split collapsed Gibbs kernel: exact sparse part
    /// over the document's `K_d` topics plus a dense part sampled from a
    /// per-word 32-way index tree rebuilt every iteration.  The default.
    #[default]
    SparseCgs,
    /// AliasLDA-style hybrid: the exact sparse part is kept, but the dense
    /// part is drawn in O(1) from a per-word *stale* alias table rebuilt
    /// every `rebuild_every` iterations, with the staleness corrected by
    /// `mh_steps` Metropolis–Hastings steps against the fresh φ.  Avoids the
    /// per-word per-iteration `O(K)` tree rebuild, which is what the sparse
    /// kernel pays even for single-token words — the win grows with `K`.
    AliasHybrid {
        /// Iteration cadence of the stale alias-table rebuild (≥ 1;
        /// `1` = rebuild every iteration, i.e. tables are never stale
        /// beyond the per-token self-exclusion).
        rebuild_every: usize,
        /// Metropolis–Hastings correction steps per token (≥ 1).
        mh_steps: usize,
    },
    /// LightLDA-style cycled Metropolis–Hastings kernel (Yuan et al.):
    /// per-token alternation of an O(1) *doc proposal* (draw another token of
    /// the same document, or a uniform topic from the smoothing mass) and a
    /// *word proposal* from a per-word stale alias table over `φ̂ + β`, each
    /// corrected by a Metropolis–Hastings acceptance test against the fresh
    /// counts.  No per-document sparse pass at all — per-token cost is
    /// O(`mh_steps`) regardless of `K` or `K_d`, which is where the win over
    /// both other kernels comes from at large `K`.
    LightLda {
        /// Iteration cadence of the stale word-proposal rebuild (≥ 1).
        rebuild_every: usize,
        /// Metropolis–Hastings steps per token (≥ 1).  Even steps are doc
        /// proposals, odd steps are word proposals, so `2` gives one full
        /// doc/word cycle.
        mh_steps: usize,
        /// Vocabulary-pruning threshold for the power-law tail: words whose
        /// *global* corpus-wide stale count `Σ_k φ̂(k, v)` is below this
        /// build their word proposal from the sparse non-zero topic list
        /// plus an explicit `K·β` smoothing bucket, instead of a dense
        /// `K`-ary alias table.  `0` disables pruning (all words dense).
        /// The threshold keys on a topology-independent global count, so
        /// pruned runs stay bit-exact across GPU counts and batchings.
        prune_below: usize,
    },
    /// Measured auto-selection: iteration 0 of the trainer (and the streaming
    /// session builder) measures chunk statistics — `K`, active vocabulary,
    /// mean document length, power-law tail mass — and resolves this to the
    /// portfolio member whose own [`crate::kernels::SamplerKernel::predict_steady_compute_s`]
    /// scores fastest on an analytic per-token cost model of those
    /// statistics.  The decision is made once, deterministically, from
    /// corpus-level quantities (never from wall-clock timings or topology),
    /// and the *resolved* concrete strategy is what a checkpoint persists,
    /// so resume never re-decides.
    Auto,
}

impl SamplerStrategy {
    /// The alias-hybrid strategy with its default knobs (rebuild every 8
    /// iterations, 2 MH steps per token).  Eight iterations of staleness is
    /// the amortization point where the rebuild traffic drops well below
    /// the per-word column read the sparse kernel pays *every* iteration,
    /// while the MH correction keeps the stationary distribution exact.
    pub fn alias_hybrid() -> Self {
        SamplerStrategy::AliasHybrid {
            rebuild_every: 8,
            mh_steps: 2,
        }
    }

    /// The LightLDA strategy with its default knobs (rebuild every 8
    /// iterations, 4 MH steps per token — two full doc/word cycles — no
    /// vocabulary pruning).  Four cheap O(1) proposals mix well enough to
    /// track the sparse kernel's trajectory while staying independent of
    /// `K_d`.
    pub fn light_lda() -> Self {
        SamplerStrategy::LightLda {
            rebuild_every: 8,
            mh_steps: 4,
            prune_below: 0,
        }
    }

    /// The vocabulary-pruned LightLDA variant for power-law tails: words
    /// with a global stale count below 16 tokens — the Zipf tail, which is
    /// most of the vocabulary — build sparse word proposals at `O(nnz)`
    /// instead of `O(K)` cost.
    pub fn light_lda_pruned() -> Self {
        SamplerStrategy::LightLda {
            rebuild_every: 8,
            mh_steps: 4,
            prune_below: 16,
        }
    }

    /// Validate the strategy's knobs.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SamplerStrategy::SparseCgs | SamplerStrategy::Auto => Ok(()),
            SamplerStrategy::AliasHybrid {
                rebuild_every,
                mh_steps,
            } => {
                if rebuild_every == 0 {
                    return Err("alias rebuild_every must be at least 1".into());
                }
                if mh_steps == 0 {
                    return Err("alias mh_steps must be at least 1".into());
                }
                Ok(())
            }
            SamplerStrategy::LightLda {
                rebuild_every,
                mh_steps,
                ..
            } => {
                if rebuild_every == 0 {
                    return Err("light rebuild_every must be at least 1".into());
                }
                if mh_steps == 0 {
                    return Err("light mh_steps must be at least 1".into());
                }
                Ok(())
            }
        }
    }

    /// Whether this is the [`SamplerStrategy::Auto`] placeholder, which every
    /// construction path must resolve to a concrete portfolio member before
    /// a kernel is instantiated (checkpoints only ever persist resolved
    /// strategies).
    pub fn is_auto(&self) -> bool {
        matches!(self, SamplerStrategy::Auto)
    }
}

impl std::fmt::Display for SamplerStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            SamplerStrategy::SparseCgs => write!(f, "sparse-cgs"),
            SamplerStrategy::AliasHybrid {
                rebuild_every,
                mh_steps,
            } => write!(
                f,
                "alias(rebuild_every={rebuild_every}, mh_steps={mh_steps})"
            ),
            SamplerStrategy::LightLda {
                rebuild_every,
                mh_steps,
                prune_below,
            } => write!(
                f,
                "light(rebuild_every={rebuild_every}, mh_steps={mh_steps}, prune_below={prune_below})"
            ),
            SamplerStrategy::Auto => write!(f, "auto"),
        }
    }
}

/// Hyper-parameters and execution options of a CuLDA_CGS training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of topics `K` (must fit the 16-bit compressed representation).
    pub num_topics: usize,
    /// Dirichlet prior on document–topic mixtures.  The paper uses
    /// `α = 50 / K` (§2.1).
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.  The paper uses
    /// `β = 0.01` (§2.1).
    pub beta: f64,
    /// RNG seed of the whole run (initial assignment + all kernels).
    pub seed: u64,
    /// Chunks per GPU (`M` in Algorithm 1).  `None` lets the trainer pick the
    /// smallest `M` whose chunks fit in device memory, exactly as §5.1
    /// prescribes.
    pub chunks_per_gpu: Option<usize>,
    /// Maximum tokens one thread block samples before the word is split
    /// across additional blocks (load-balancing knob of §6.1.2).
    pub max_tokens_per_block: usize,
    /// Fan-out of the sampling index trees (32 = one warp inspects one node).
    pub tree_fanout: usize,
    /// Whether the 16-bit compression of §6.1.3 is applied to φ and to CSR
    /// column indices (disabled only by the ablation benchmarks).
    pub compress_16bit: bool,
    /// Whether samplers in a thread block share the p2 tree / p*(k) array in
    /// shared memory (disabled only by the ablation benchmarks).
    pub share_p2_tree: bool,
    /// Number of vocabulary shards `S` the φ synchronization is split into.
    /// `Some(1)` is the paper's dense §5.2 reduce of the full `K × V`
    /// replica behind one global barrier; `Some(S > 1)` partitions the
    /// vocabulary into `S` column ranges, each reduced + broadcast behind its
    /// own barrier, so shard `s`'s reduce can overlap the sampling of shard
    /// `s + 1`.  `None` (the default) **auto-tunes**: the trainer runs
    /// iteration 0 dense, measures the compute/sync ratio, and picks `S`
    /// from it (see `CuLdaTrainer::sync_plan`).  Sharding never changes the
    /// sampled assignments — integer column sums are the same however the
    /// columns are grouped — only where the barriers fall (see `DESIGN.md`
    /// §8), which is what makes a timing-driven auto-tune safe under the
    /// determinism contract.
    pub sync_shards: Option<usize>,
    /// How many shard reduces may be in flight while sampling continues
    /// (bounds the staging buffers a real implementation would dedicate to
    /// in-transit shards).  `0` disables the overlap: shards still reduce
    /// independently but only after all sampling finishes.  Ignored when
    /// `sync_shards == 1`.
    pub sync_overlap_depth: usize,
    /// Whether a multi-node cluster run synchronizes φ hierarchically:
    /// per-node tree reduce over the fast intra-node link, inter-node
    /// exchange of only the reduced shard over the fabric, intra-node
    /// broadcast back (`true`, the default) — versus the topology-oblivious
    /// flat reduce that pays the fabric on every tree round (`false`, the
    /// LDA*-style baseline the scaling figures compare against).  Ignored on
    /// single-node systems, where both schedules cost the same.  Like
    /// sharding, this is costing-only: the synchronized counts are integer
    /// sums, identical under any reduction grouping, so training stays
    /// bit-exact across any `(nodes × GPUs × threads)` combination.
    pub hierarchical_sync: bool,
    /// How many fabric messages one hierarchical synchronization batches its
    /// vocabulary shards into: shards are split into this many contiguous
    /// *inter-node groups*, each group crossing the fabric as a single
    /// leader exchange once its last shard has been locally reduced.  Fewer
    /// groups amortize the fabric latency over more bytes; more groups let
    /// the exchange pipeline with sampling.  `None` (the default)
    /// auto-tunes the group count together with the shard count from
    /// iteration 0's measured compute span.  Ignored unless the system is a
    /// multi-node cluster running hierarchical sync.
    pub sync_inter_groups: Option<usize>,
    /// Which sampler-kernel implementation the run uses (default:
    /// [`SamplerStrategy::SparseCgs`], the paper's §6.1 kernel).  See
    /// [`LdaConfig::sampler`].
    pub sampler: SamplerStrategy,
}

impl LdaConfig {
    /// The paper's default configuration for `K` topics
    /// (`α = 50/K`, `β = 0.01`).
    pub fn with_topics(num_topics: usize) -> Self {
        LdaConfig {
            num_topics,
            alpha: 50.0 / num_topics as f64,
            beta: 0.01,
            seed: 0xC0FFEE,
            chunks_per_gpu: None,
            max_tokens_per_block: 2048,
            tree_fanout: 32,
            compress_16bit: true,
            share_p2_tree: true,
            sync_shards: None,
            sync_overlap_depth: 2,
            hierarchical_sync: true,
            sync_inter_groups: None,
            sampler: SamplerStrategy::SparseCgs,
        }
    }

    /// Override the seed (builder style).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override `M`, the chunks-per-GPU factor (builder style).
    pub fn chunks_per_gpu(mut self, m: usize) -> Self {
        self.chunks_per_gpu = Some(m);
        self
    }

    /// Shard the φ synchronization into `shards` vocabulary ranges (builder
    /// style).  Does not change the sampled topics, only the barrier
    /// structure of the simulated reduce; see [`crate::sync::SyncPlan`].
    /// Passing `None` restores the default: auto-tune the shard count from
    /// the measured compute/sync ratio of iteration 0.
    ///
    /// ```
    /// use culda_core::LdaConfig;
    ///
    /// let cfg = LdaConfig::with_topics(64).sync_shards(4).sync_overlap_depth(2);
    /// assert_eq!(cfg.sync_shards, Some(4));
    /// cfg.validate().unwrap();
    ///
    /// let auto = LdaConfig::with_topics(64).sync_shards(None);
    /// assert_eq!(auto.sync_shards, None);
    /// ```
    pub fn sync_shards(mut self, shards: impl Into<Option<usize>>) -> Self {
        self.sync_shards = shards.into();
        self
    }

    /// Override the shard-reduce overlap depth (builder style); `0` turns the
    /// sampling/reduce overlap off.
    pub fn sync_overlap_depth(mut self, depth: usize) -> Self {
        self.sync_overlap_depth = depth;
        self
    }

    /// Select hierarchical vs flat φ synchronization on a multi-node cluster
    /// (builder style); see [`LdaConfig::hierarchical_sync`].  `false`
    /// reproduces the topology-oblivious baseline.  Has no effect on
    /// single-node systems.
    pub fn hierarchical_sync(mut self, hierarchical: bool) -> Self {
        self.hierarchical_sync = hierarchical;
        self
    }

    /// Set how many fabric messages a hierarchical sync batches its shards
    /// into (builder style); `None` restores the default of auto-tuning the
    /// group count from iteration 0.  See [`LdaConfig::sync_inter_groups`].
    ///
    /// ```
    /// use culda_core::LdaConfig;
    ///
    /// let cfg = LdaConfig::with_topics(64).sync_inter_groups(2);
    /// assert_eq!(cfg.sync_inter_groups, Some(2));
    /// assert!(cfg.hierarchical_sync, "hierarchical is the cluster default");
    /// cfg.validate().unwrap();
    /// ```
    pub fn sync_inter_groups(mut self, groups: impl Into<Option<usize>>) -> Self {
        self.sync_inter_groups = groups.into();
        self
    }

    /// Select the sampler-kernel implementation (builder style).  Every
    /// strategy trains through the same [`crate::kernels::SamplerKernel`]
    /// trait — batch, streaming, checkpoint/resume and the CLI all honour
    /// the choice.
    ///
    /// ```
    /// use culda_core::{LdaConfig, SamplerStrategy};
    ///
    /// let cfg = LdaConfig::with_topics(256)
    ///     .sampler(SamplerStrategy::AliasHybrid { rebuild_every: 8, mh_steps: 2 });
    /// assert_eq!(cfg.sampler, SamplerStrategy::alias_hybrid());
    /// cfg.validate().unwrap();
    /// ```
    pub fn sampler(mut self, sampler: SamplerStrategy) -> Self {
        self.sampler = sampler;
        self
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_topics < 2 {
            return Err("num_topics must be at least 2".into());
        }
        if self.num_topics > u16::MAX as usize + 1 {
            return Err(format!(
                "num_topics = {} does not fit the 16-bit compressed topic index (§6.1.3)",
                self.num_topics
            ));
        }
        if !(self.alpha > 0.0) || !(self.beta > 0.0) {
            return Err("alpha and beta must be positive".into());
        }
        if self.max_tokens_per_block == 0 {
            return Err("max_tokens_per_block must be positive".into());
        }
        if self.tree_fanout < 2 {
            return Err("tree_fanout must be at least 2".into());
        }
        if let Some(m) = self.chunks_per_gpu {
            if m == 0 {
                return Err("chunks_per_gpu must be at least 1".into());
            }
        }
        if self.sync_shards == Some(0) {
            return Err("sync_shards must be at least 1".into());
        }
        if self.sync_inter_groups == Some(0) {
            return Err("sync_inter_groups must be at least 1".into());
        }
        self.sampler.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = LdaConfig::with_topics(1000);
        assert!((c.alpha - 0.05).abs() < 1e-12);
        assert_eq!(c.beta, 0.01);
        assert_eq!(c.tree_fanout, 32);
        assert!(c.compress_16bit);
        c.validate().unwrap();
    }

    #[test]
    fn builder_overrides() {
        let c = LdaConfig::with_topics(64).seed(7).chunks_per_gpu(2);
        assert_eq!(c.seed, 7);
        assert_eq!(c.chunks_per_gpu, Some(2));
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(LdaConfig::with_topics(1).validate().is_err());
        assert!(LdaConfig::with_topics(70_000).validate().is_err());
        let mut c = LdaConfig::with_topics(16);
        c.alpha = 0.0;
        assert!(c.validate().is_err());
        let mut c = LdaConfig::with_topics(16);
        c.beta = -1.0;
        assert!(c.validate().is_err());
        let mut c = LdaConfig::with_topics(16);
        c.max_tokens_per_block = 0;
        assert!(c.validate().is_err());
        let mut c = LdaConfig::with_topics(16);
        c.tree_fanout = 1;
        assert!(c.validate().is_err());
        let c = LdaConfig::with_topics(16).chunks_per_gpu(0);
        assert!(c.validate().is_err());
        let c = LdaConfig::with_topics(16).sync_shards(0);
        assert!(c.validate().is_err());
        let c = LdaConfig::with_topics(16).sync_inter_groups(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn cluster_sync_defaults_to_hierarchical_auto_grouping() {
        let c = LdaConfig::with_topics(64);
        assert!(c.hierarchical_sync);
        assert_eq!(c.sync_inter_groups, None, "None = auto-tune");
        let c = c.hierarchical_sync(false).sync_inter_groups(4);
        assert!(!c.hierarchical_sync);
        assert_eq!(c.sync_inter_groups, Some(4));
        c.validate().unwrap();
        let c = c.sync_inter_groups(None);
        assert_eq!(c.sync_inter_groups, None);
        c.validate().unwrap();
    }

    #[test]
    fn sampler_strategy_defaults_validates_and_displays() {
        let c = LdaConfig::with_topics(16);
        assert_eq!(c.sampler, SamplerStrategy::SparseCgs);
        assert_eq!(c.sampler, SamplerStrategy::default());
        assert_eq!(c.sampler.to_string(), "sparse-cgs");

        let c = c.sampler(SamplerStrategy::alias_hybrid());
        assert_eq!(
            c.sampler,
            SamplerStrategy::AliasHybrid {
                rebuild_every: 8,
                mh_steps: 2
            }
        );
        assert_eq!(c.sampler.to_string(), "alias(rebuild_every=8, mh_steps=2)");
        c.validate().unwrap();

        let bad = LdaConfig::with_topics(16).sampler(SamplerStrategy::AliasHybrid {
            rebuild_every: 0,
            mh_steps: 2,
        });
        assert!(bad.validate().is_err());
        let bad = LdaConfig::with_topics(16).sampler(SamplerStrategy::AliasHybrid {
            rebuild_every: 4,
            mh_steps: 0,
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn light_and_auto_strategies_validate_and_display() {
        let c = LdaConfig::with_topics(16).sampler(SamplerStrategy::light_lda());
        assert_eq!(
            c.sampler,
            SamplerStrategy::LightLda {
                rebuild_every: 8,
                mh_steps: 4,
                prune_below: 0
            }
        );
        assert_eq!(
            c.sampler.to_string(),
            "light(rebuild_every=8, mh_steps=4, prune_below=0)"
        );
        c.validate().unwrap();

        let pruned = SamplerStrategy::light_lda_pruned();
        let SamplerStrategy::LightLda { prune_below, .. } = pruned else {
            panic!("pruned ctor is the light variant");
        };
        assert!(prune_below > 0);
        pruned.validate().unwrap();

        let auto = LdaConfig::with_topics(16).sampler(SamplerStrategy::Auto);
        assert!(auto.sampler.is_auto());
        assert!(!SamplerStrategy::light_lda().is_auto());
        assert_eq!(auto.sampler.to_string(), "auto");
        auto.validate().unwrap();

        let bad = SamplerStrategy::LightLda {
            rebuild_every: 0,
            mh_steps: 4,
            prune_below: 0,
        };
        assert!(bad.validate().is_err());
        let bad = SamplerStrategy::LightLda {
            rebuild_every: 8,
            mh_steps: 0,
            prune_below: 0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sync_sharding_defaults_to_auto_tune() {
        let c = LdaConfig::with_topics(64);
        assert_eq!(c.sync_shards, None, "None = auto-tune after iteration 0");
        assert!(c.sync_overlap_depth > 0);
        let c = c.sync_shards(8).sync_overlap_depth(0);
        assert_eq!(c.sync_shards, Some(8));
        assert_eq!(c.sync_overlap_depth, 0);
        c.validate().unwrap();
        let c = c.sync_shards(None);
        assert_eq!(c.sync_shards, None);
        c.validate().unwrap();
    }
}
