//! Session construction and streaming/online training.
//!
//! This module is the front door of the crate.  [`SessionBuilder`] fluently
//! assembles a corpus, an [`LdaConfig`] and a (simulated) [`MultiGpuSystem`]
//! and then either:
//!
//! * [`SessionBuilder::build`] — a batch [`TrainingSession`] (the classic
//!   train-N-iterations workflow of the paper), or
//! * [`SessionBuilder::build_streaming`] — a [`StreamingSession`]: a live
//!   model that accepts **mini-batch ingestion** of new documents, **retires**
//!   old ones, and **rotates checkpoints** so the process can die and resume
//!   exactly (`DESIGN.md` §9).
//!
//! ```
//! use culda_core::{LdaConfig, SessionBuilder};
//! use culda_corpus::{DatasetProfile, Document};
//! use culda_gpusim::{DeviceSpec, MultiGpuSystem};
//!
//! // Batch: the whole corpus up front.
//! let corpus = DatasetProfile::nytimes().scaled_to_tokens(2_000).generate(7);
//! let mut trainer = SessionBuilder::new()
//!     .corpus(&corpus)
//!     .config(LdaConfig::with_topics(8).seed(7))
//!     .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 7))
//!     .build()
//!     .unwrap();
//! trainer.train(2);
//!
//! // Streaming: start empty, feed documents as they arrive.
//! let mut session = SessionBuilder::new()
//!     .config(LdaConfig::with_topics(8).seed(7))
//!     .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 7))
//!     .build_streaming()
//!     .unwrap();
//! let uids = session.ingest(&[
//!     Document::new(vec![0u32, 1, 2, 1]),
//!     Document::new(vec![2u32, 3, 3]),
//! ]);
//! session.train(2).unwrap();
//! session.retire(&uids[..1]).unwrap();
//! assert_eq!(session.stats().live_docs, 1);
//! session.validate().unwrap();
//! ```
//!
//! ## Why determinism survives ingestion batching
//!
//! Every random draw a [`StreamingSession`] makes is a counter-based pure
//! function of `(seed, stream, document uid, slot)`.  Document uids are
//! assigned by a monotone counter that never depends on how documents are
//! grouped into [`StreamingSession::ingest`] calls, and each ingested
//! document is initialised and Gibbs-burnt-in **sequentially in uid order**
//! against the evolving global φ.  Ingesting `[a, b] + [c]` therefore
//! executes the exact same sequence of draws and count updates as ingesting
//! `[a, b, c]` — bit for bit — and training afterwards sees identical state.

use crate::checkpoint::{rotation, ModelCheckpoint};
use crate::config::{LdaConfig, SamplerStrategy};
use crate::inference::TopicInferencer;
use crate::kernels::{sampler_for, SamplerKernel, SamplerResumeState};
use crate::model::ChunkState;
use crate::schedule::IterationStats;
use crate::serve::{ModelSnapshots, SnapshotShared};
use crate::trainer::{CuLdaTrainer, TrainerError};
use culda_corpus::{Corpus, CorpusBuffer, Document};
use culda_gpusim::rng::stable_u64;
use culda_gpusim::MultiGpuSystem;
use culda_sparse::{CsrBuilder, CsrMatrix, DenseMatrix};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A batch training session.
///
/// The batch path is exactly the CuLDA_CGS trainer of Figure 3; the alias
/// names the role it plays next to [`StreamingSession`] in the builder API.
pub type TrainingSession = CuLdaTrainer;

/// Errors produced by streaming sessions.
#[derive(Debug)]
pub enum SessionError {
    /// Constructing or rebuilding the underlying trainer failed.
    Trainer(TrainerError),
    /// Reading or validating a rotated checkpoint failed.
    Checkpoint(crate::checkpoint::CheckpointError),
    /// Reading or writing a corpus snapshot failed.
    Corpus(culda_corpus::SnapshotError),
    /// Filesystem failure while rotating or resuming.
    Io(io::Error),
    /// The request conflicts with the session state (unknown uid, empty
    /// session, corrupt rotation metadata, ...).
    State(String),
    /// The model failed validation while freezing a serving snapshot
    /// ([`StreamingSession::publish_snapshot`]).
    Inference(crate::inference::InferenceError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Trainer(e) => write!(f, "trainer error: {e}"),
            SessionError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            SessionError::Corpus(e) => write!(f, "corpus snapshot error: {e}"),
            SessionError::Io(e) => write!(f, "io error: {e}"),
            SessionError::State(msg) => write!(f, "session state error: {msg}"),
            SessionError::Inference(e) => write!(f, "snapshot publication error: {e}"),
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Trainer(e) => Some(e),
            SessionError::Checkpoint(e) => Some(e),
            SessionError::Corpus(e) => Some(e),
            SessionError::Io(e) => Some(e),
            SessionError::State(_) => None,
            SessionError::Inference(e) => Some(e),
        }
    }
}

impl From<crate::inference::InferenceError> for SessionError {
    fn from(e: crate::inference::InferenceError) -> Self {
        SessionError::Inference(e)
    }
}

impl From<io::Error> for SessionError {
    fn from(e: io::Error) -> Self {
        SessionError::Io(e)
    }
}

impl From<TrainerError> for SessionError {
    fn from(e: TrainerError) -> Self {
        SessionError::Trainer(e)
    }
}

impl From<crate::checkpoint::CheckpointError> for SessionError {
    fn from(e: crate::checkpoint::CheckpointError) -> Self {
        SessionError::Checkpoint(e)
    }
}

impl From<culda_corpus::SnapshotError> for SessionError {
    fn from(e: culda_corpus::SnapshotError) -> Self {
        SessionError::Corpus(e)
    }
}

/// Knobs specific to streaming sessions (set through [`SessionBuilder`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingOptions {
    /// Collapsed-Gibbs sweeps each ingested document is burnt in with
    /// against the current global φ before it joins regular training.
    /// `0` skips the burn-in: documents enter with their stable random
    /// initialisation only, which makes an ingest-everything-then-train
    /// streaming run bit-identical to a batch [`TrainingSession`].
    pub burn_in_sweeps: usize,
    /// When the fraction of stored tokens held by retired (tombstoned)
    /// documents crosses this threshold, the backing store is compacted.
    /// Compaction never changes live document order, so it cannot change
    /// sampled assignments.
    pub compaction_threshold: f64,
    /// Directory checkpoints are rotated into on the iteration cadence.
    pub checkpoint_dir: Option<PathBuf>,
    /// Rotate a checkpoint every this many completed training iterations
    /// (requires `checkpoint_dir`).
    pub checkpoint_every: Option<usize>,
    /// How many rotated checkpoints to retain.
    pub keep_last: usize,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        StreamingOptions {
            burn_in_sweeps: 1,
            compaction_threshold: 0.25,
            checkpoint_dir: None,
            checkpoint_every: None,
            keep_last: 3,
        }
    }
}

/// Fluent construction of training sessions — the crate's entry point.
///
/// Replaces the positional `CuLdaTrainer::new` / `CuLdaTrainer::
/// with_assignments` pair (now deprecated shims).  See the
/// [module docs](crate::session) for examples of both the batch and the
/// streaming path.
#[derive(Debug, Default)]
pub struct SessionBuilder {
    corpus: Option<Corpus>,
    config: Option<LdaConfig>,
    system: Option<MultiGpuSystem>,
    assignments: Option<(Vec<Vec<u16>>, u64)>,
    sampler_state: Option<SamplerResumeState>,
    streaming: StreamingOptions,
}

impl SessionBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The corpus to train on (cloned into the session).  Required for
    /// [`SessionBuilder::build`]; optional for
    /// [`SessionBuilder::build_streaming`], where it becomes the first
    /// ingested mini-batch.
    pub fn corpus(mut self, corpus: &Corpus) -> Self {
        self.corpus = Some(corpus.clone());
        self
    }

    /// The run configuration (defaults to `LdaConfig::with_topics(128)`).
    pub fn config(mut self, config: LdaConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Override the configuration's RNG seed (convenience; applies on top of
    /// whatever `config` is set).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config = Some(
            self.config
                .unwrap_or_else(|| LdaConfig::with_topics(128))
                .seed(seed),
        );
        self
    }

    /// The simulated GPU system to run on.  Required.
    pub fn system(mut self, system: MultiGpuSystem) -> Self {
        self.system = Some(system);
        self
    }

    /// Restore an explicit per-document assignment snapshot
    /// (`z[doc][token]`, original token order) instead of random
    /// initialisation, continuing the iteration counter from
    /// `start_iteration` — the checkpoint-resume path for batch sessions.
    pub fn assignments(mut self, z: Vec<Vec<u16>>, start_iteration: u64) -> Self {
        self.assignments = Some((z, start_iteration));
        self
    }

    /// Restore checkpointed sampler-internal state
    /// ([`crate::ModelCheckpoint::sampler_state`]) alongside the assignment
    /// snapshot, so a sampler that keeps state between iterations — the
    /// alias hybrid's stale tables — resumes mid-cadence bit-exactly
    /// instead of rebuilding fresh tables from the current φ.  `None` is
    /// accepted (and is all a memoryless sampler ever has).
    pub fn sampler_state(mut self, state: Option<SamplerResumeState>) -> Self {
        self.sampler_state = state;
        self
    }

    /// Select the sampler-kernel implementation (convenience; applies on top
    /// of whatever `config` is set, like [`SessionBuilder::seed`]).  Both
    /// the batch trainer and the streaming session — including its ingest
    /// burn-in — route through the selected
    /// [`crate::kernels::SamplerKernel`].
    pub fn sampler(mut self, sampler: SamplerStrategy) -> Self {
        self.config = Some(
            self.config
                .unwrap_or_else(|| LdaConfig::with_topics(128))
                .sampler(sampler),
        );
        self
    }

    /// Burn-in sweeps per ingested document (streaming only; default 1).
    pub fn burn_in_sweeps(mut self, sweeps: usize) -> Self {
        self.streaming.burn_in_sweeps = sweeps;
        self
    }

    /// Tombstone fraction that triggers storage compaction (streaming only;
    /// default 0.25).
    pub fn compaction_threshold(mut self, fraction: f64) -> Self {
        self.streaming.compaction_threshold = fraction;
        self
    }

    /// Rotate checkpoint-v2 snapshots into `dir` every `every` completed
    /// training iterations, keeping the most recent
    /// [`StreamingOptions::keep_last`] (streaming only).
    pub fn checkpoint_cadence(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        self.streaming.checkpoint_dir = Some(dir.into());
        self.streaming.checkpoint_every = Some(every.max(1));
        self
    }

    /// How many rotated checkpoints to retain (streaming only; default 3).
    pub fn keep_last(mut self, keep: usize) -> Self {
        self.streaming.keep_last = keep.max(1);
        self
    }

    fn config_or_default(config: Option<LdaConfig>) -> LdaConfig {
        config.unwrap_or_else(|| LdaConfig::with_topics(128))
    }

    /// Build a batch [`TrainingSession`] over the configured corpus.
    pub fn build(self) -> Result<TrainingSession, TrainerError> {
        let corpus = self.corpus.ok_or_else(|| {
            TrainerError::InvalidConfig(
                "a batch session needs a corpus (SessionBuilder::corpus)".into(),
            )
        })?;
        let system = self.system.ok_or_else(|| {
            TrainerError::InvalidConfig("a session needs a system (SessionBuilder::system)".into())
        })?;
        let config = Self::config_or_default(self.config);
        let sampler_state = self.sampler_state.as_ref();
        match &self.assignments {
            None => CuLdaTrainer::from_parts(&corpus, config, system, None, sampler_state),
            Some((z, start)) => {
                CuLdaTrainer::from_parts(&corpus, config, system, Some((z, *start)), sampler_state)
            }
        }
    }

    /// Build a [`StreamingSession`].  A configured corpus is ingested as the
    /// first mini-batch (stable init + burn-in, exactly as a later
    /// [`StreamingSession::ingest`] of the same documents would be).
    pub fn build_streaming(self) -> Result<StreamingSession, TrainerError> {
        if self.assignments.is_some() || self.sampler_state.is_some() {
            return Err(TrainerError::InvalidConfig(
                "streaming sessions restore state via StreamingSession::resume, \
                 not SessionBuilder::assignments / sampler_state"
                    .into(),
            ));
        }
        let system = self.system.ok_or_else(|| {
            TrainerError::InvalidConfig("a session needs a system (SessionBuilder::system)".into())
        })?;
        let mut config = Self::config_or_default(self.config);
        config.validate().map_err(TrainerError::InvalidConfig)?;
        // Resolve `Auto` before the session fixes its kernel: from the seed
        // corpus when one is configured (it is ingested as the first
        // mini-batch below), from the deterministic empty-corpus default
        // otherwise.  Either way the decision is independent of ingestion
        // batching, and checkpoints carry the resolved strategy.
        match &self.corpus {
            Some(corpus) => {
                crate::kernels::portfolio::resolve_auto_sampler(&mut config, corpus);
            }
            None => {
                let empty = culda_corpus::CorpusBuilder::new(0).build();
                crate::kernels::portfolio::resolve_auto_sampler(&mut config, &empty);
            }
        }
        let mut session = StreamingSession::empty(config, system, self.streaming);
        if let Some(corpus) = self.corpus {
            session.buffer.ensure_vocab(corpus.vocab_size());
            session.ensure_phi_width(corpus.vocab_size());
            let docs: Vec<Document> = (0..corpus.num_docs())
                .map(|d| Document::from(corpus.doc(d)))
                .collect();
            session
                .try_ingest(&docs)
                .map_err(|e| TrainerError::InvalidConfig(e.to_string()))?;
        }
        Ok(session)
    }
}

/// A point-in-time summary of a streaming session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Live (non-retired) documents.
    pub live_docs: usize,
    /// Tokens across the live documents.
    pub live_tokens: u64,
    /// Documents ingested over the session's lifetime.
    pub ingested_docs: u64,
    /// Documents retired over the session's lifetime.
    pub retired_docs: u64,
    /// Fraction of stored tokens held by tombstoned documents (drops to 0
    /// after compaction).
    pub tombstone_fraction: f64,
    /// Live tokens per session chunk slot (the least-loaded-chunk placement
    /// target of [`StreamingSession::ingest`]).
    pub chunk_tokens: Vec<u64>,
    /// Completed training iterations (across resumes).
    pub iterations: u64,
    /// Accumulated simulated training time.
    pub sim_time_s: f64,
    /// Bytes the φ syncs of this process's bursts moved over intra-node
    /// links (all the sync traffic on a single-node system).
    pub intra_sync_bytes: u64,
    /// Bytes the φ syncs of this process's bursts moved over the inter-node
    /// fabric (0 on a single-node system).
    pub inter_sync_bytes: u64,
    /// Checkpoints rotated out so far (across resumes).
    pub checkpoints_written: u64,
    /// Current vocabulary size (grows with ingestion).
    pub vocab_size: usize,
    /// Queries answered through [`ModelSnapshots`] handles (lifetime).
    pub queries_served: u64,
    /// Median per-query latency over the recent window, milliseconds
    /// (0 while nothing has been served).
    pub query_p50_ms: f64,
    /// 99th-percentile per-query latency over the recent window,
    /// milliseconds (0 while nothing has been served).
    pub query_p99_ms: f64,
    /// Lifetime queries per wall-clock second (0 while nothing has been
    /// served).
    pub query_qps: f64,
    /// The currently published snapshot epoch (0 = nothing published).
    pub snapshot_epoch: u64,
}

impl SessionStats {
    /// Max-over-mean occupancy of the session chunk slots (1.0 = perfectly
    /// balanced ingestion, like `Partitioner::imbalance`).
    pub fn chunk_imbalance(&self) -> f64 {
        let max = *self.chunk_tokens.iter().max().unwrap_or(&0) as f64;
        let sum: u64 = self.chunk_tokens.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        max / (sum as f64 / self.chunk_tokens.len() as f64)
    }
}

/// Per-document state the session tracks next to the token storage.
#[derive(Debug, Clone)]
struct DocMeta {
    /// Topic assignment of every token, original document order.
    z: Vec<u16>,
    /// Session chunk slot the document was placed on at ingest.
    chunk: usize,
}

/// A live LDA model that grows and shrinks while training.
///
/// Owns the authoritative global state between training bursts: the document
/// store (with stable uids and tombstones), every document's topic
/// assignments, and the global φ / `n_k` counts.  Training itself is
/// delegated to the batch trainer: whenever the membership changed since the
/// last burst, the trainer is rebuilt from the live corpus and the current
/// assignments (an exact state hand-off, so the rebuild is invisible to the
/// sampled trajectory).  See the [module docs](crate::session) for the
/// determinism rationale and `DESIGN.md` §9 for the lifecycle.
pub struct StreamingSession {
    config: LdaConfig,
    /// Pristine system template; every trainer rebuild gets a
    /// `fresh_like()` copy so device memory trackers start clean.
    system: MultiGpuSystem,
    /// The configured sampler kernel; ingest burn-in routes through its
    /// [`SamplerKernel::burn_in_sweep`] so a document is burnt in by the
    /// same sampler family that will train it.
    sampler: Arc<dyn SamplerKernel>,
    opts: StreamingOptions,
    buffer: CorpusBuffer,
    meta: BTreeMap<u64, DocMeta>,
    /// Global topic–word counts (`K × V`), authoritative whenever no trainer
    /// burst is mid-flight.
    phi: DenseMatrix<u32>,
    /// Global topic totals.
    nk: Vec<i64>,
    /// Live tokens per session chunk slot.
    chunk_tokens: Vec<u64>,
    iterations_done: u64,
    sim_time_s: f64,
    /// Lifetime per-tier φ sync traffic of this process's bursts (intra-node
    /// links vs the inter-node fabric).
    intra_sync_bytes: u64,
    inter_sync_bytes: u64,
    history: Vec<IterationStats>,
    trainer: Option<CuLdaTrainer>,
    /// Checkpointed sampler-internal state awaiting the first trainer build
    /// after a resume.  Cleared by ingest/retire: once the membership
    /// changes, the uninterrupted run would also have rebuilt its trainer
    /// (and its sampler state) from scratch, so restoring the snapshot
    /// would *diverge* from it rather than match it.
    resume_sampler_state: Option<SamplerResumeState>,
    /// True when ingest/retire changed the corpus since the trainer was
    /// last built: the next training burst rebuilds it.
    membership_dirty: bool,
    ingested_docs: u64,
    retired_docs: u64,
    checkpoints_written: u64,
    /// The query tier's publication cell, shared with every
    /// [`ModelSnapshots`] handle ([`StreamingSession::snapshots`]).
    serve: Arc<SnapshotShared>,
}

impl StreamingSession {
    fn empty(config: LdaConfig, system: MultiGpuSystem, opts: StreamingOptions) -> Self {
        let slots = system.num_gpus() * config.chunks_per_gpu.unwrap_or(1);
        let k = config.num_topics;
        let sampler = sampler_for(&config);
        StreamingSession {
            sampler,
            buffer: CorpusBuffer::new(0),
            meta: BTreeMap::new(),
            phi: DenseMatrix::zeros(k, 0),
            nk: vec![0i64; k],
            chunk_tokens: vec![0u64; slots.max(1)],
            iterations_done: 0,
            sim_time_s: 0.0,
            intra_sync_bytes: 0,
            inter_sync_bytes: 0,
            history: Vec::new(),
            trainer: None,
            resume_sampler_state: None,
            membership_dirty: true,
            ingested_docs: 0,
            retired_docs: 0,
            checkpoints_written: 0,
            serve: Arc::new(SnapshotShared::new()),
            config,
            system,
            opts,
        }
    }

    /// Widen φ to `vocab` columns (vocabulary growth on ingest).
    fn ensure_phi_width(&mut self, vocab: usize) {
        if vocab <= self.phi.cols() {
            return;
        }
        let k = self.phi.rows();
        let mut wider = DenseMatrix::zeros(k, vocab);
        for row in 0..k {
            wider.row_mut(row)[..self.phi.cols()].copy_from_slice(self.phi.row(row));
        }
        self.phi = wider;
    }

    /// Append documents to the live model.
    ///
    /// Each document, **sequentially in arrival order**: receives the next
    /// stable uid; grows the vocabulary if it introduces new word ids; gets
    /// a stable random topic per token (the same counter-based draw the
    /// batch trainer's initialisation uses, keyed by `(uid, slot)`); is
    /// placed on the least-loaded session chunk slot; and is burnt in with
    /// [`StreamingOptions::burn_in_sweeps`] collapsed-Gibbs sweeps against
    /// the current global φ, with every draw keyed by `(uid, slot)` as well.
    /// Because nothing depends on the grouping into `ingest` calls, results
    /// are bit-exact regardless of ingestion batching.
    ///
    /// Returns the stable uids, which later address
    /// [`StreamingSession::retire`].
    ///
    /// Panicking wrapper over [`StreamingSession::try_ingest`] for the
    /// (astronomically common) case where the keying bounds documented
    /// there cannot be hit.
    pub fn ingest(&mut self, docs: &[Document]) -> Vec<u64> {
        match self.try_ingest(docs) {
            Ok(uids) => uids,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`StreamingSession::ingest`].
    ///
    /// Every deterministic draw for a document is keyed by packing
    /// `(uid << 32) | slot` into one 64-bit counter, so a uid or a token
    /// slot at or beyond 2³² would silently *collide* with another
    /// document's RNG stream (same draws, correlated topics) instead of
    /// failing.  Ingestion therefore rejects — before any mutation, so a
    /// failed call is side-effect-free like [`StreamingSession::retire`] —
    /// any batch that would:
    ///
    /// * assign a document uid ≥ 2³² (more than ~4.3 billion documents over
    ///   the session's lifetime; shard across sessions instead), or
    /// * ingest a single document longer than 2³² tokens.
    pub fn try_ingest(&mut self, docs: &[Document]) -> Result<Vec<u64>, SessionError> {
        let first_uid = self.buffer.next_uid();
        let end_uid = first_uid.checked_add(docs.len() as u64);
        if end_uid.is_none() || end_uid.unwrap() > MAX_KEYED_UID {
            return Err(SessionError::State(format!(
                "ingesting {} documents starting at uid {first_uid} would exceed \
                 the 2^32 uid bound of the deterministic `(uid << 32) | slot` \
                 draw keying; shard across sessions instead",
                docs.len()
            )));
        }
        if let Some(doc) = docs.iter().find(|d| d.words.len() as u64 > MAX_KEYED_UID) {
            return Err(SessionError::State(format!(
                "a document with {} tokens exceeds the 2^32 token-slot bound of \
                 the deterministic `(uid << 32) | slot` draw keying",
                doc.words.len()
            )));
        }
        Ok(docs.iter().map(|doc| self.ingest_one(doc)).collect())
    }

    fn ingest_one(&mut self, doc: &Document) -> u64 {
        let k = self.config.num_topics;
        let uid = self.buffer.push(&doc.words);
        self.ensure_phi_width(self.buffer.vocab_size());

        // Stable initialisation: same stream and keying as the batch
        // trainer's `random_init_stable`, so a session that never retires
        // keys every document exactly like the batch path does.
        let mut z = Vec::with_capacity(doc.words.len());
        let mut theta_d = vec![0u32; k];
        for (slot, &w) in doc.words.iter().enumerate() {
            let draw = stable_u64(
                self.config.seed,
                ChunkState::INIT_STREAM,
                (uid << 32) | slot as u64,
            );
            let topic = (draw % k as u64) as usize;
            z.push(topic as u16);
            theta_d[topic] += 1;
            *self.phi.get_mut(topic, w as usize) += 1;
            self.nk[topic] += 1;
        }

        // Burn the document in against the current global φ, document-major
        // so batching cannot change the order of draws.  The sweep itself is
        // the configured sampler's [`SamplerKernel::burn_in_sweep`]: exact
        // collapsed Gibbs for the default sparse-CGS strategy, stale-alias +
        // MH for the alias hybrid — either way every draw is keyed by
        // `(uid, slot)`.
        for sweep in 0..self.opts.burn_in_sweeps {
            self.sampler.burn_in_sweep(
                &self.config,
                uid,
                sweep,
                &doc.words,
                &mut z,
                &mut theta_d,
                &mut self.phi,
                &mut self.nk,
            );
        }

        // Least-loaded chunk placement (ties go to the lowest slot).
        let chunk = self
            .chunk_tokens
            .iter()
            .enumerate()
            .min_by_key(|&(i, &t)| (t, i))
            .map(|(i, _)| i)
            .unwrap_or(0);
        self.chunk_tokens[chunk] += doc.words.len() as u64;

        self.meta.insert(uid, DocMeta { z, chunk });
        self.ingested_docs += 1;
        self.membership_dirty = true;
        // A membership change invalidates any checkpointed sampler state:
        // the uninterrupted run rebuilds its sampler from scratch here too.
        self.resume_sampler_state = None;
        uid
    }

    /// Retire documents: subtract each document's topic counts from the
    /// global φ / `n_k`, free its chunk slot occupancy, and tombstone its
    /// storage row.  When the tombstone fraction crosses
    /// [`StreamingOptions::compaction_threshold`], the store is compacted
    /// (a pure storage operation — live order is untouched).
    ///
    /// Fails without side effects if any uid is unknown, already retired,
    /// or listed more than once.
    pub fn retire(&mut self, uids: &[u64]) -> Result<(), SessionError> {
        // Validate the whole request up front so the mutation loop below
        // cannot fail halfway through (all-or-nothing semantics).
        let mut seen = std::collections::BTreeSet::new();
        for &uid in uids {
            if !self.buffer.is_alive(uid) {
                return Err(SessionError::State(format!(
                    "document {uid} is unknown or already retired"
                )));
            }
            if !seen.insert(uid) {
                return Err(SessionError::State(format!(
                    "document {uid} is listed twice in the retire request"
                )));
            }
        }
        for &uid in uids {
            let words = self
                .buffer
                .words(uid)
                .expect("alive document has words")
                .to_vec();
            self.buffer
                .retire(uid)
                .expect("validated alive and unique above");
            let meta = self.meta.remove(&uid).expect("alive document has meta");
            for (&w, &t) in words.iter().zip(&meta.z) {
                let t = t as usize;
                *self.phi.get_mut(t, w as usize) -= 1;
                self.nk[t] -= 1;
            }
            self.chunk_tokens[meta.chunk] -= words.len() as u64;
            self.retired_docs += 1;
        }
        self.membership_dirty = true;
        self.resume_sampler_state = None;
        if self.buffer.tombstone_fraction() > self.opts.compaction_threshold {
            self.buffer.compact();
        }
        Ok(())
    }

    /// Rebuild the trainer from the live corpus + current assignments if the
    /// membership changed since the last burst.
    fn ensure_trainer(&mut self) -> Result<(), SessionError> {
        if self.trainer.is_some() && !self.membership_dirty {
            return Ok(());
        }
        if self.buffer.live_tokens() == 0 {
            return Err(SessionError::State(
                "the session holds no live tokens; ingest documents before training".into(),
            ));
        }
        let corpus = self.buffer.live_corpus();
        let z: Vec<Vec<u16>> = self.meta.values().map(|m| m.z.clone()).collect();
        // Consume any checkpointed sampler state on this first build after a
        // resume (later rebuilds are membership changes, which cleared it).
        let sampler_state = self.resume_sampler_state.take();
        let trainer = CuLdaTrainer::from_parts(
            &corpus,
            self.config.clone(),
            self.system.fresh_like(),
            Some((&z, self.iterations_done)),
            sampler_state.as_ref(),
        )?;
        self.trainer = Some(trainer);
        self.membership_dirty = false;
        Ok(())
    }

    /// Pull the authoritative state (z, φ, n_k) back out of the trainer
    /// after a training burst.
    fn sync_from_trainer(&mut self) {
        if self.membership_dirty {
            return; // trainer (if any) is stale; session state already authoritative
        }
        let Some(trainer) = &self.trainer else {
            return;
        };
        let snapshot = trainer.z_snapshot();
        debug_assert_eq!(snapshot.len(), self.meta.len());
        for (meta, row) in self.meta.values_mut().zip(snapshot) {
            meta.z = row;
        }
        self.phi = trainer.global_phi();
        self.nk = trainer.global_nk();
    }

    /// Run one training iteration over all live documents.
    pub fn run_iteration(&mut self) -> Result<IterationStats, SessionError> {
        let stats = self.run_iteration_inner()?;
        self.sync_from_trainer();
        self.publish_if_serving()?;
        Ok(stats)
    }

    fn run_iteration_inner(&mut self) -> Result<IterationStats, SessionError> {
        self.ensure_trainer()?;
        let trainer = self.trainer.as_mut().expect("ensured above");
        let stats = trainer.run_iteration();
        self.iterations_done += 1;
        self.sim_time_s += stats.sim_time_s;
        self.intra_sync_bytes += stats.intra_sync_bytes;
        self.inter_sync_bytes += stats.inter_sync_bytes;
        self.history.push(stats);
        Ok(stats)
    }

    /// Run `iterations` training iterations, rotating checkpoints on the
    /// configured cadence ([`SessionBuilder::checkpoint_cadence`]).
    pub fn train(&mut self, iterations: usize) -> Result<&[IterationStats], SessionError> {
        for _ in 0..iterations {
            self.run_iteration_inner()?;
            if let (Some(every), Some(dir)) =
                (self.opts.checkpoint_every, self.opts.checkpoint_dir.clone())
            {
                if self.iterations_done.is_multiple_of(every as u64) {
                    let keep = self.opts.keep_last;
                    self.sync_from_trainer();
                    self.rotate_checkpoints(&dir, keep)?;
                }
            }
            // Iteration boundary: refresh the query tier's snapshot while
            // anyone is serving from it.
            self.publish_if_serving()?;
        }
        self.sync_from_trainer();
        Ok(&self.history)
    }

    /// A cloneable handle onto the session's epoch-published model
    /// snapshots — the reader side of the concurrent query tier
    /// (`DESIGN.md` §12).  While at least one handle is live, training
    /// publishes a fresh snapshot at every iteration boundary;
    /// [`StreamingSession::publish_snapshot`] publishes on demand (e.g.
    /// right after building the session, before the first burst).
    ///
    /// Readers run fold-in inference against frozen snapshots and never
    /// touch training state, so serving cannot perturb the training
    /// trajectory by a single bit.
    pub fn snapshots(&self) -> ModelSnapshots {
        ModelSnapshots::from_shared(Arc::clone(&self.serve))
    }

    /// Freeze the current synchronized φ / `n_k` into an immutable
    /// [`TopicInferencer`] and publish it to every
    /// [`ModelSnapshots`] handle.  Returns the new snapshot epoch.
    pub fn publish_snapshot(&mut self) -> Result<u64, SessionError> {
        self.sync_from_trainer();
        let inferencer =
            TopicInferencer::try_new(&self.phi, &self.nk, self.config.alpha, self.config.beta)?;
        Ok(self.serve.publish(Arc::new(inferencer)))
    }

    /// Publish a fresh snapshot iff a [`ModelSnapshots`] handle exists, so
    /// sessions nobody serves from never pay the `K × V` snapshot build.
    fn publish_if_serving(&mut self) -> Result<(), SessionError> {
        if Arc::strong_count(&self.serve) > 1 {
            self.publish_snapshot()?;
        }
        Ok(())
    }

    /// Capture the current model + sampler state as a checkpoint
    /// snapshot (θ is recounted from the live assignments).
    pub fn to_checkpoint(&mut self) -> ModelCheckpoint {
        self.sync_from_trainer();
        let k = self.config.num_topics;
        let mut builder = CsrBuilder::new(self.meta.len(), k);
        for meta in self.meta.values() {
            builder.push_row(meta.z.iter().map(|&t| (t, 1u32)));
        }
        let theta: CsrMatrix = builder.finish();
        // Sampler-internal state: from the live trainer when it is fresh;
        // otherwise whatever a resume left pending (a stale trainer's
        // sampler would be rebuilt from scratch anyway, exactly as the
        // uninterrupted run rebuilds it after a membership change).
        let sampler_state = if self.membership_dirty {
            self.resume_sampler_state.clone()
        } else {
            self.trainer
                .as_ref()
                .and_then(|t| t.sampler_kernel().resume_state())
        };
        ModelCheckpoint {
            num_topics: k,
            vocab_size: self.phi.cols(),
            alpha: self.config.alpha,
            beta: self.config.beta,
            nk: self.nk.clone(),
            phi: self.phi.clone(),
            theta,
            seed: self.config.seed,
            iterations: self.iterations_done,
            z: Some(self.meta.values().map(|m| m.z.clone()).collect()),
            sampler: self.config.sampler,
            sampler_state,
        }
    }

    /// Write a rotated checkpoint set into `dir` and prune old ones so at
    /// most `keep_last` remain.  A set is three files sharing a stem
    /// ([`rotation::stem`]): the checkpoint-v2 model (`.cldm`), the live
    /// corpus snapshot (`.cldc`), and the session metadata (`.meta` — stable
    /// uids, chunk placement, lifetime counters).  Returns the stem path of
    /// the new set.
    pub fn rotate_checkpoints(
        &mut self,
        dir: impl AsRef<Path>,
        keep_last: usize,
    ) -> Result<PathBuf, SessionError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let seq = self.checkpoints_written;
        let stem = dir.join(rotation::stem(seq, self.iterations_done));

        let ckpt = self.to_checkpoint();
        let corpus = self.buffer.live_corpus();
        culda_corpus::save_corpus(&corpus, stem.with_extension(rotation::CORPUS_EXT))?;
        self.write_meta(&stem.with_extension(rotation::META_EXT))?;
        // The model file lands last: discovery treats a set without its
        // `.cldm` as incomplete, so a crash mid-rotation never yields a
        // resumable-but-corrupt set.
        ckpt.save(stem.with_extension(rotation::MODEL_EXT))?;

        self.checkpoints_written += 1;
        rotation::prune(dir, keep_last.max(1))?;
        Ok(stem)
    }

    fn write_meta(&self, path: &Path) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        w.write_all(META_MAGIC)?;
        w.write_all(&META_VERSION.to_le_bytes())?;
        w.write_all(&self.buffer.next_uid().to_le_bytes())?;
        w.write_all(&self.ingested_docs.to_le_bytes())?;
        w.write_all(&self.retired_docs.to_le_bytes())?;
        // The rotation being written is number `checkpoints_written`; a
        // session resumed from it must continue the sequence *after* it.
        w.write_all(&(self.checkpoints_written + 1).to_le_bytes())?;
        w.write_all(&(self.chunk_tokens.len() as u64).to_le_bytes())?;
        w.write_all(&(self.meta.len() as u64).to_le_bytes())?;
        for (uid, meta) in &self.meta {
            w.write_all(&uid.to_le_bytes())?;
            w.write_all(&(meta.chunk as u32).to_le_bytes())?;
        }
        w.flush()
    }

    /// Resume a session from the most recent rotated checkpoint set in
    /// `dir`, restoring the exact sampler state: training after the resume
    /// is bit-identical to a session that never stopped, and later ingests
    /// continue the stable uid stream.
    ///
    /// The configuration is reconstructed from the checkpoint (K, priors,
    /// seed) with default knobs elsewhere; use
    /// [`StreamingSession::resume_with`] to supply the full original
    /// configuration.
    pub fn resume(dir: impl AsRef<Path>, system: MultiGpuSystem) -> Result<Self, SessionError> {
        Self::resume_inner(dir.as_ref(), None, system, StreamingOptions::default())
    }

    /// [`StreamingSession::resume`] with explicit streaming options
    /// (burn-in sweeps, compaction threshold, checkpoint cadence) while the
    /// configuration is still reconstructed from the checkpoint.
    pub fn resume_with_options(
        dir: impl AsRef<Path>,
        system: MultiGpuSystem,
        opts: StreamingOptions,
    ) -> Result<Self, SessionError> {
        Self::resume_inner(dir.as_ref(), None, system, opts)
    }

    /// [`StreamingSession::resume`] with an explicit configuration and
    /// streaming options (validated against the checkpoint).
    pub fn resume_with(
        dir: impl AsRef<Path>,
        config: LdaConfig,
        system: MultiGpuSystem,
        opts: StreamingOptions,
    ) -> Result<Self, SessionError> {
        Self::resume_inner(dir.as_ref(), Some(config), system, opts)
    }

    fn resume_inner(
        dir: &Path,
        config: Option<LdaConfig>,
        system: MultiGpuSystem,
        opts: StreamingOptions,
    ) -> Result<Self, SessionError> {
        let entry = rotation::latest(dir)?.ok_or_else(|| {
            SessionError::State(format!("no rotated checkpoints found in {}", dir.display()))
        })?;
        let stem = dir.join(&entry.stem);
        let ckpt = ModelCheckpoint::load(stem.with_extension(rotation::MODEL_EXT))?;
        let corpus = culda_corpus::load_corpus(stem.with_extension(rotation::CORPUS_EXT))?;
        let meta = SessionMeta::read(&stem.with_extension(rotation::META_EXT))?;

        let z = ckpt.z.clone().ok_or_else(|| {
            SessionError::State("checkpoint stores no assignment state; cannot resume".into())
        })?;
        if corpus.num_docs() != z.len() || corpus.num_docs() != meta.docs.len() {
            return Err(SessionError::State(format!(
                "rotation set is inconsistent: corpus has {} documents, z {}, meta {}",
                corpus.num_docs(),
                z.len(),
                meta.docs.len()
            )));
        }
        if corpus.vocab_size() != ckpt.vocab_size {
            return Err(SessionError::State(format!(
                "corpus vocabulary ({}) does not match the checkpoint ({})",
                corpus.vocab_size(),
                ckpt.vocab_size
            )));
        }
        let config = match config {
            Some(mut cfg) => {
                if cfg.num_topics != ckpt.num_topics {
                    return Err(SessionError::State(format!(
                        "configuration K = {} conflicts with the checkpoint's K = {}",
                        cfg.num_topics, ckpt.num_topics
                    )));
                }
                cfg.alpha = ckpt.alpha;
                cfg.beta = ckpt.beta;
                cfg.seed = ckpt.seed;
                cfg.sampler = ckpt.sampler;
                cfg
            }
            None => {
                let mut cfg = LdaConfig::with_topics(ckpt.num_topics).seed(ckpt.seed);
                cfg.alpha = ckpt.alpha;
                cfg.beta = ckpt.beta;
                cfg.sampler = ckpt.sampler;
                cfg
            }
        };
        config
            .validate()
            .map_err(|e| SessionError::State(format!("invalid configuration: {e}")))?;

        // The sidecar is untrusted on-disk input: check the uid stream here
        // (strictly ascending, all below next_uid) so corruption surfaces as
        // an error rather than tripping `CorpusBuffer::from_parts`'s
        // internal invariant assertions.
        let mut prev: Option<u64> = None;
        for &(uid, _) in &meta.docs {
            if prev.is_some_and(|p| p >= uid) || uid >= meta.next_uid {
                return Err(SessionError::State(format!(
                    "session meta is corrupt: document uid {uid} breaks the \
                     uid stream (next_uid = {})",
                    meta.next_uid
                )));
            }
            prev = Some(uid);
        }

        let mut session = StreamingSession::empty(config, system, opts);
        session.chunk_tokens = vec![0u64; meta.num_chunks.max(1)];
        let docs: Vec<(u64, Vec<u32>)> = meta
            .docs
            .iter()
            .enumerate()
            .map(|(i, &(uid, _))| (uid, corpus.doc(i).to_vec()))
            .collect();
        session.buffer = CorpusBuffer::from_parts(corpus.vocab_size(), docs, meta.next_uid);
        for ((&(uid, chunk), row), d) in meta.docs.iter().zip(z).zip(0..corpus.num_docs()) {
            if chunk as usize >= session.chunk_tokens.len() {
                return Err(SessionError::State(format!(
                    "meta assigns document {uid} to chunk {chunk}, but only {} slots exist",
                    session.chunk_tokens.len()
                )));
            }
            if row.len() != corpus.doc_len(d) {
                return Err(SessionError::State(format!(
                    "z row for document {uid} has {} tokens, corpus stores {}",
                    row.len(),
                    corpus.doc_len(d)
                )));
            }
            session.chunk_tokens[chunk as usize] += row.len() as u64;
            session.meta.insert(
                uid,
                DocMeta {
                    z: row,
                    chunk: chunk as usize,
                },
            );
        }
        session.phi = ckpt.phi;
        session.nk = ckpt.nk;
        session.resume_sampler_state = ckpt.sampler_state;
        session.iterations_done = ckpt.iterations;
        session.ingested_docs = meta.ingested_docs;
        session.retired_docs = meta.retired_docs;
        session.checkpoints_written = meta.checkpoints_written;
        session.membership_dirty = true;
        session.validate().map_err(SessionError::State)?;
        Ok(session)
    }

    /// A point-in-time summary (live documents/tokens, chunk occupancy,
    /// tombstone fraction, lifetime counters).
    pub fn stats(&self) -> SessionStats {
        let query = self.serve.query_stats();
        SessionStats {
            live_docs: self.buffer.num_live_docs(),
            live_tokens: self.buffer.live_tokens(),
            ingested_docs: self.ingested_docs,
            retired_docs: self.retired_docs,
            tombstone_fraction: self.buffer.tombstone_fraction(),
            chunk_tokens: self.chunk_tokens.clone(),
            iterations: self.iterations_done,
            sim_time_s: self.sim_time_s,
            intra_sync_bytes: self.intra_sync_bytes,
            inter_sync_bytes: self.inter_sync_bytes,
            checkpoints_written: self.checkpoints_written,
            vocab_size: self.buffer.vocab_size(),
            queries_served: query.queries,
            query_p50_ms: query.p50_ms,
            query_p99_ms: query.p99_ms,
            query_qps: query.qps,
            snapshot_epoch: query.epoch,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Stable uids of the live documents, in corpus order.
    pub fn live_uids(&self) -> Vec<u64> {
        self.buffer.live_uids()
    }

    /// Completed training iterations, including those before a resume.
    pub fn completed_iterations(&self) -> u64 {
        self.iterations_done
    }

    /// Accumulated simulated training time of this process's bursts.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_time_s
    }

    /// Per-iteration statistics of this process's training bursts.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// The global topic–word counts φ (`K × V`).
    pub fn global_phi(&self) -> &DenseMatrix<u32> {
        &self.phi
    }

    /// The global topic totals `n_k`.
    pub fn global_nk(&self) -> &[i64] {
        &self.nk
    }

    /// Topic assignments of every live document, in corpus order — the same
    /// shape [`CuLdaTrainer::z_snapshot`] reports, so the determinism
    /// helpers in `culda-testkit` apply directly.
    pub fn z_snapshot(&self) -> Vec<Vec<u16>> {
        self.meta.values().map(|m| m.z.clone()).collect()
    }

    /// The batch trainer currently backing the session, if one was built for
    /// the latest membership (useful for schedule/throughput introspection).
    pub fn trainer(&self) -> Option<&CuLdaTrainer> {
        if self.membership_dirty {
            None
        } else {
            self.trainer.as_ref()
        }
    }

    /// Check every count invariant: φ/n_k must be exactly recountable from
    /// the live assignments, chunk occupancy must sum to the live tokens,
    /// and the backing trainer (when fresh) must agree.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.config.num_topics;
        let mut phi = DenseMatrix::<u32>::zeros(k, self.phi.cols());
        let mut nk = vec![0i64; k];
        for (uid, meta) in &self.meta {
            let words = self
                .buffer
                .words(*uid)
                .ok_or_else(|| format!("meta references unknown document {uid}"))?;
            if words.len() != meta.z.len() {
                return Err(format!(
                    "document {uid} stores {} tokens but {} assignments",
                    words.len(),
                    meta.z.len()
                ));
            }
            for (&w, &t) in words.iter().zip(&meta.z) {
                if t as usize >= k {
                    return Err(format!("document {uid} assigns an out-of-range topic {t}"));
                }
                *phi.get_mut(t as usize, w as usize) += 1;
                nk[t as usize] += 1;
            }
        }
        if phi != self.phi {
            return Err("global φ does not match a recount of the live assignments".into());
        }
        if nk != self.nk {
            return Err("n_k does not match a recount of the live assignments".into());
        }
        let occupancy: u64 = self.chunk_tokens.iter().sum();
        if occupancy != self.buffer.live_tokens() {
            return Err(format!(
                "chunk occupancy sums to {occupancy}, live tokens are {}",
                self.buffer.live_tokens()
            ));
        }
        if !self.membership_dirty {
            if let Some(trainer) = &self.trainer {
                trainer.validate()?;
            }
        }
        Ok(())
    }
}

/// Exclusive bound on document uids *and* per-document token slots: the
/// deterministic draw keying packs `(uid << 32) | slot`, so either half
/// reaching 2³² would alias another document's RNG stream.  Enforced by
/// [`StreamingSession::try_ingest`].
const MAX_KEYED_UID: u64 = 1 << 32;

/// Magic bytes of the session metadata sidecar.
const META_MAGIC: &[u8; 4] = b"CLSM";
/// Current metadata format version.
const META_VERSION: u32 = 1;

/// Parsed `.meta` sidecar of one rotation set.
struct SessionMeta {
    next_uid: u64,
    ingested_docs: u64,
    retired_docs: u64,
    checkpoints_written: u64,
    num_chunks: usize,
    /// `(uid, chunk)` per live document, ascending uid order.
    docs: Vec<(u64, u32)>,
}

impl SessionMeta {
    fn read(path: &Path) -> Result<Self, SessionError> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != META_MAGIC {
            return Err(SessionError::State(format!(
                "bad session meta magic {magic:?} in {}",
                path.display()
            )));
        }
        let version = read_u32(&mut r)?;
        if version != META_VERSION {
            return Err(SessionError::State(format!(
                "unsupported session meta version {version}"
            )));
        }
        let next_uid = read_u64(&mut r)?;
        let ingested_docs = read_u64(&mut r)?;
        let retired_docs = read_u64(&mut r)?;
        let checkpoints_written = read_u64(&mut r)?;
        let num_chunks = read_u64(&mut r)? as usize;
        let num_docs = read_u64(&mut r)? as usize;
        let mut docs = Vec::with_capacity(num_docs.min(1 << 20));
        for _ in 0..num_docs {
            let uid = read_u64(&mut r)?;
            let chunk = read_u32(&mut r)?;
            docs.push((uid, chunk));
        }
        Ok(SessionMeta {
            next_uid,
            ingested_docs,
            retired_docs,
            checkpoints_written,
            num_chunks,
            docs,
        })
    }
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;
    use culda_gpusim::DeviceSpec;

    fn small_corpus() -> Corpus {
        DatasetProfile {
            name: "session".into(),
            num_docs: 60,
            vocab_size: 50,
            avg_doc_len: 12.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(13)
    }

    fn builder(seed: u64) -> SessionBuilder {
        SessionBuilder::new()
            .config(LdaConfig::with_topics(8).seed(seed))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), seed))
    }

    #[test]
    fn builder_build_matches_deprecated_constructor() {
        let corpus = small_corpus();
        let mut a = builder(5).corpus(&corpus).build().unwrap();
        #[allow(deprecated)]
        let mut b = CuLdaTrainer::new(
            &corpus,
            LdaConfig::with_topics(8).seed(5),
            MultiGpuSystem::single(DeviceSpec::v100_volta(), 5),
        )
        .unwrap();
        a.train(3);
        b.train(3);
        assert_eq!(a.z_snapshot(), b.z_snapshot());
        assert_eq!(a.global_phi(), b.global_phi());
    }

    #[test]
    fn builder_requires_corpus_and_system() {
        assert!(matches!(
            SessionBuilder::new().build(),
            Err(TrainerError::InvalidConfig(_))
        ));
        assert!(matches!(
            SessionBuilder::new().corpus(&small_corpus()).build(),
            Err(TrainerError::InvalidConfig(_))
        ));
        assert!(matches!(
            SessionBuilder::new().build_streaming(),
            Err(TrainerError::InvalidConfig(_))
        ));
    }

    #[test]
    fn streaming_with_zero_burn_in_matches_batch_training() {
        let corpus = small_corpus();
        let mut batch = builder(9).corpus(&corpus).build().unwrap();
        batch.train(4);

        let mut streaming = builder(9)
            .corpus(&corpus)
            .burn_in_sweeps(0)
            .build_streaming()
            .unwrap();
        streaming.train(4).unwrap();

        assert_eq!(batch.z_snapshot(), streaming.z_snapshot());
        assert_eq!(&batch.global_phi(), streaming.global_phi());
        assert_eq!(batch.global_nk(), streaming.global_nk());
    }

    #[test]
    fn ingest_burn_in_keeps_counts_consistent() {
        let corpus = small_corpus();
        let mut session = builder(3)
            .corpus(&corpus)
            .burn_in_sweeps(3)
            .build_streaming()
            .unwrap();
        session.validate().unwrap();
        assert_eq!(session.stats().live_tokens as usize, corpus.num_tokens());
        session.train(2).unwrap();
        session.validate().unwrap();
        assert_eq!(session.completed_iterations(), 2);
        assert!(session.sim_time_s() > 0.0);
    }

    #[test]
    fn vocabulary_grows_on_ingest() {
        let mut session = builder(1).build_streaming().unwrap();
        session.ingest(&[Document::new(vec![0u32, 1, 2])]);
        assert_eq!(session.stats().vocab_size, 3);
        session.ingest(&[Document::new(vec![9u32, 9])]);
        assert_eq!(session.stats().vocab_size, 10);
        assert_eq!(session.global_phi().cols(), 10);
        session.validate().unwrap();
        session.train(1).unwrap();
        session.validate().unwrap();
    }

    #[test]
    fn retire_rejects_unknown_uids_without_side_effects() {
        let mut session = builder(2)
            .corpus(&small_corpus())
            .build_streaming()
            .unwrap();
        let stats_before = session.stats();
        let live = session.live_uids();
        assert!(session.retire(&[live[0], 9_999]).is_err());
        assert_eq!(
            session.stats(),
            stats_before,
            "failed retire must not mutate"
        );
        session.retire(&[live[0]]).unwrap();
        assert_eq!(session.stats().live_docs, stats_before.live_docs - 1);
        session.validate().unwrap();
    }

    #[test]
    fn retire_rejects_duplicate_uids_without_side_effects() {
        let mut session = builder(8)
            .corpus(&small_corpus())
            .build_streaming()
            .unwrap();
        session.train(1).unwrap();
        let stats_before = session.stats();
        let live = session.live_uids();
        assert!(session.retire(&[live[0], live[0]]).is_err());
        assert_eq!(
            session.stats(),
            stats_before,
            "a rejected duplicate retire must not mutate the session"
        );
        session.train(1).unwrap();
        session.validate().unwrap();
    }

    #[test]
    fn training_an_empty_session_is_an_error() {
        let mut session = builder(4).build_streaming().unwrap();
        assert!(matches!(session.train(1), Err(SessionError::State(_))));
    }

    #[test]
    fn ingest_keying_is_pinned_for_normal_inputs() {
        // Regression pin for the `(uid << 32) | slot` draw keying: the
        // initial topic of token `slot` of document `uid` must be exactly
        // `stable_u64(seed, INIT_STREAM, (uid << 32) | slot) % K`, forever.
        // (A keying change would silently break bit-compat of every stored
        // checkpoint and the batch/streaming equivalence.)
        let seed = 11u64;
        let k = 8usize;
        let mut session = SessionBuilder::new()
            .config(LdaConfig::with_topics(k).seed(seed))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), seed))
            .burn_in_sweeps(0)
            .build_streaming()
            .unwrap();
        let docs = vec![
            Document::new(vec![0u32, 1, 2, 3, 1]),
            Document::new(vec![4u32, 4, 0]),
        ];
        let uids = session.try_ingest(&docs).unwrap();
        assert_eq!(uids, vec![0, 1]);
        let z = session.z_snapshot();
        for (uid, doc) in uids.iter().zip(&docs) {
            for slot in 0..doc.words.len() {
                let expected =
                    stable_u64(seed, ChunkState::INIT_STREAM, (uid << 32) | slot as u64) % k as u64;
                assert_eq!(z[*uid as usize][slot] as u64, expected);
            }
        }
    }

    #[test]
    fn ingest_rejects_uids_beyond_the_keying_bound() {
        let mut session = builder(1).build_streaming().unwrap();
        // Fast-forward the uid stream to the 2^32 boundary, as ~4.3 billion
        // ingests would (from_parts is the resume path's constructor).
        session.buffer = culda_corpus::CorpusBuffer::from_parts(0, vec![], (1u64 << 32) - 1);
        let last = session.try_ingest(&[Document::new(vec![0u32, 1])]).unwrap();
        assert_eq!(last, vec![(1u64 << 32) - 1]);
        let err = session
            .try_ingest(&[Document::new(vec![2u32])])
            .unwrap_err();
        assert!(
            err.to_string().contains("2^32 uid bound"),
            "unexpected error: {err}"
        );
        // The failed call was all-or-nothing: the uid stream did not move.
        assert_eq!(session.buffer.next_uid(), 1u64 << 32);
        session.validate().unwrap();
    }

    #[test]
    fn snapshots_publish_at_iteration_boundaries_only_while_serving() {
        let mut session = builder(7)
            .corpus(&small_corpus())
            .build_streaming()
            .unwrap();
        session.train(1).unwrap();
        // No handle: training must not pay for snapshot builds.
        assert_eq!(session.stats().snapshot_epoch, 0);

        let handle = session.snapshots();
        assert!(handle.snapshot().is_none());
        session.train(2).unwrap();
        assert_eq!(handle.epoch(), 2, "one publication per iteration");
        let (epoch, frozen) = handle.snapshot().unwrap();
        assert_eq!(epoch, 2);
        assert_eq!(frozen.num_topics(), 8);
        assert_eq!(session.stats().snapshot_epoch, 2);

        // On-demand publication works without training.
        assert_eq!(session.publish_snapshot().unwrap(), 3);
        drop(handle);
        session.train(1).unwrap();
        assert_eq!(
            session.stats().snapshot_epoch,
            3,
            "publication stops once the last handle is dropped"
        );
    }

    #[test]
    fn least_loaded_placement_balances_chunks() {
        let mut session = SessionBuilder::new()
            .config(LdaConfig::with_topics(4).seed(6).chunks_per_gpu(2))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 6))
            .build_streaming()
            .unwrap();
        for i in 0..20 {
            session.ingest(&[Document::new(vec![(i % 5) as u32; 6])]);
        }
        let stats = session.stats();
        assert_eq!(stats.chunk_tokens.len(), 2);
        assert!(stats.chunk_imbalance() < 1.05, "{:?}", stats.chunk_tokens);
    }
}
