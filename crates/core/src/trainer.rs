//! The top-level CuLDA_CGS trainer (the training engine of Figure 3).
//!
//! Trainers are constructed through [`crate::session::SessionBuilder`]; the
//! positional constructors on [`CuLdaTrainer`] are deprecated shims kept for
//! source compatibility.
//!
//! ```no_run
//! use culda_core::{LdaConfig, SessionBuilder};
//! use culda_corpus::DatasetProfile;
//! use culda_gpusim::{DeviceSpec, MultiGpuSystem};
//!
//! let corpus = DatasetProfile::nytimes().scaled_to_tokens(200_000).generate(42);
//! let mut trainer = SessionBuilder::new()
//!     .corpus(&corpus)
//!     .config(LdaConfig::with_topics(128))
//!     .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 42))
//!     .build()
//!     .unwrap();
//! trainer.train(100);
//! println!("simulated time: {:.2}s", trainer.sim_time_s());
//! ```

use crate::config::LdaConfig;
use crate::kernels::{sampler_for, SamplerKernel, SamplerResumeState};
use crate::model::ChunkState;
use crate::schedule::{run_iteration, IterationStats, ScheduleKind};
use crate::sync::{synchronize_phi_hier_sharded, HierarchicalSyncPlan, SyncPlan};
use crate::work::{build_work_items, WorkItem};
use culda_corpus::{Corpus, Partitioner};
use culda_gpusim::MultiGpuSystem;
use culda_sparse::{CsrBuilder, CsrMatrix, DenseMatrix};
use std::sync::Arc;

/// Errors produced while constructing a trainer.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainerError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// Even the largest supported `M` cannot fit a chunk in device memory.
    DeviceMemoryTooSmall {
        /// Estimated bytes required for the smallest feasible working set.
        required: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// The corpus holds no tokens.
    EmptyCorpus,
}

impl std::fmt::Display for TrainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainerError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TrainerError::DeviceMemoryTooSmall { required, capacity } => write!(
                f,
                "device memory too small: needs {required} bytes, capacity {capacity} bytes"
            ),
            TrainerError::EmptyCorpus => write!(f, "corpus contains no tokens"),
        }
    }
}

impl std::error::Error for TrainerError {}

/// The CuLDA_CGS trainer: owns the chunk states, the (simulated) GPU system
/// and the training loop of Algorithm 1.
pub struct CuLdaTrainer {
    config: LdaConfig,
    system: MultiGpuSystem,
    states: Vec<Arc<ChunkState>>,
    work_items: Vec<Vec<WorkItem>>,
    schedule: ScheduleKind,
    sync_plan: HierarchicalSyncPlan,
    /// The pluggable sampling-kernel implementation
    /// ([`LdaConfig::sampler`]); owns whatever per-chunk state the strategy
    /// keeps between iterations (e.g. stale alias tables).
    sampler: Arc<dyn SamplerKernel>,
    vocab_size: usize,
    num_docs: usize,
    total_tokens: u64,
    sim_time_s: f64,
    history: Vec<IterationStats>,
    /// Iterations completed before this trainer was constructed (non-zero
    /// only when resumed from a checkpoint); keeps the counter-based RNG's
    /// iteration streams from ever being reused across a resume.
    base_iteration: u64,
    /// True while the sync plan is still to be picked from iteration 0's
    /// measured compute span — on a multi-GPU system, when either the shard
    /// count (`LdaConfig::sync_shards == None`) or, on a multi-node cluster
    /// with the hierarchical sync, the fabric group count
    /// (`LdaConfig::sync_inter_groups == None`) is left to the tuner;
    /// cleared once `auto_tune_sync_plan` has run.
    auto_tune_shards: bool,
}

impl CuLdaTrainer {
    /// Build a trainer: validates the configuration, chooses `M` (chunks per
    /// GPU) from the device memory capacity as §5.1 prescribes, partitions
    /// the corpus by token count, preprocesses every chunk into its
    /// word-major layout, randomly initialises the topic assignments and
    /// performs the initial φ synchronization.
    #[deprecated(
        since = "0.5.0",
        note = "use `culda_core::SessionBuilder::new().corpus(..).config(..).system(..).build()` \
                — the builder is the supported entry point and also opens the \
                streaming/online path via `.build_streaming()`"
    )]
    pub fn new(
        corpus: &Corpus,
        config: LdaConfig,
        system: MultiGpuSystem,
    ) -> Result<Self, TrainerError> {
        Self::from_parts(corpus, config, system, None, None)
    }

    /// Build a trainer whose topic assignments are restored from an explicit
    /// per-document snapshot (`z[doc][token]`, original token order) instead
    /// of random initialisation — the `train --resume-from` path.  The
    /// snapshot must cover exactly this corpus.
    #[deprecated(
        since = "0.5.0",
        note = "use `culda_core::SessionBuilder::new().corpus(..).assignments(..).build()` \
                (or `StreamingSession::resume` for rotated streaming checkpoints)"
    )]
    pub fn with_assignments(
        corpus: &Corpus,
        config: LdaConfig,
        system: MultiGpuSystem,
        z: &[Vec<u16>],
        start_iteration: u64,
    ) -> Result<Self, TrainerError> {
        Self::from_parts(corpus, config, system, Some((z, start_iteration)), None)
    }

    /// The one real constructor, shared by the deprecated positional shims
    /// and [`crate::session::SessionBuilder`]: `init` optionally restores an
    /// explicit assignment snapshot together with the iteration counter to
    /// continue the RNG streams from, and `sampler_state` optionally replays
    /// checkpointed sampler-internal state (e.g. the alias hybrid's stale
    /// tables) into the freshly built sampler so a mid-cadence resume is
    /// bit-exact.
    pub(crate) fn from_parts(
        corpus: &Corpus,
        config: LdaConfig,
        system: MultiGpuSystem,
        init: Option<(&[Vec<u16>], u64)>,
        sampler_state: Option<&SamplerResumeState>,
    ) -> Result<Self, TrainerError> {
        match init {
            None => Self::build(corpus, config, system, None, sampler_state),
            Some((z, start_iteration)) => {
                Self::validate_assignments(corpus, &config, z)?;
                let mut trainer = Self::build(corpus, config, system, Some(z), sampler_state)?;
                trainer.base_iteration = start_iteration;
                Ok(trainer)
            }
        }
    }

    fn validate_assignments(
        corpus: &Corpus,
        config: &LdaConfig,
        z: &[Vec<u16>],
    ) -> Result<(), TrainerError> {
        if z.len() != corpus.num_docs() {
            return Err(TrainerError::InvalidConfig(format!(
                "assignment snapshot covers {} documents, corpus has {}",
                z.len(),
                corpus.num_docs()
            )));
        }
        for (d, zd) in z.iter().enumerate() {
            if zd.len() != corpus.doc(d).len() {
                return Err(TrainerError::InvalidConfig(format!(
                    "assignment snapshot row {d} has {} tokens, document has {}",
                    zd.len(),
                    corpus.doc(d).len()
                )));
            }
            if zd.iter().any(|&k| k as usize >= config.num_topics) {
                return Err(TrainerError::InvalidConfig(format!(
                    "assignment snapshot row {d} assigns a topic ≥ K = {}",
                    config.num_topics
                )));
            }
        }
        Ok(())
    }

    fn build(
        corpus: &Corpus,
        mut config: LdaConfig,
        system: MultiGpuSystem,
        init: Option<&[Vec<u16>]>,
        sampler_state: Option<&SamplerResumeState>,
    ) -> Result<Self, TrainerError> {
        config.validate().map_err(TrainerError::InvalidConfig)?;
        if corpus.num_tokens() == 0 {
            return Err(TrainerError::EmptyCorpus);
        }
        // Resolve `Auto` to a concrete portfolio member from corpus-level
        // statistics before any kernel exists.  The choice is a pure
        // function of the corpus and K — never of topology or timings — and
        // the resolved strategy is what `config()` (and therefore every
        // checkpoint) carries, so a resumed run never re-decides.
        crate::kernels::portfolio::resolve_auto_sampler(&mut config, corpus);

        let g = system.num_gpus();
        let m = match config.chunks_per_gpu {
            Some(m) => m,
            None => Self::choose_chunks_per_gpu(corpus, &config, &system)?,
        };
        let num_chunks = m * g;
        let schedule = if m == 1 {
            ScheduleKind::Resident
        } else {
            ScheduleKind::Streamed { chunks_per_gpu: m }
        };

        // Partition by document, balanced by token count (§4).
        let partitioner = Partitioner::by_tokens(corpus, num_chunks);
        let layouts = partitioner.build_layouts(corpus);

        // Build chunk states and randomly initialise the assignments.  The
        // initial topics come from the counter-based generator keyed by each
        // token's (document, slot) identity, so the initialisation — like the
        // sampling draws — is identical for every chunking of the corpus.
        let states: Vec<Arc<ChunkState>> = layouts
            .into_iter()
            .enumerate()
            .map(|(i, layout)| {
                let state = ChunkState::new(i, layout, config.num_topics);
                match init {
                    None => state.random_init_stable(&config, config.seed),
                    Some(z) => state.init_from_assignments(z),
                }
                Arc::new(state)
            })
            .collect();

        // Register the resident working set with the device memory trackers.
        for (i, state) in states.iter().enumerate() {
            let device = system.device(i % g);
            let bytes = state.device_bytes(config.compress_16bit);
            let name = format!("chunk{i}");
            if m == 1 {
                device.memory.alloc(&name, bytes).map_err(|e| {
                    TrainerError::DeviceMemoryTooSmall {
                        required: e.requested,
                        capacity: e.capacity,
                    }
                })?;
            }
        }

        let work_items: Vec<Vec<WorkItem>> = states
            .iter()
            .map(|s| build_work_items(&s.layout, config.max_tokens_per_block))
            .collect();

        // Initial synchronization so every chunk samples from the full φ.
        let sync_plan = HierarchicalSyncPlan::from_config(&config, corpus.vocab_size());
        synchronize_phi_hier_sharded(&states, &system, &sync_plan, config.compress_16bit);
        let tune_groups = system.num_nodes() > 1
            && config.hierarchical_sync
            && config.sync_inter_groups.is_none();
        let auto_tune_shards =
            (config.sync_shards.is_none() || tune_groups) && system.num_gpus() > 1;
        let sampler = sampler_for(&config);
        if let Some(state) = sampler_state {
            sampler.restore_resume_state(state);
        }

        Ok(CuLdaTrainer {
            sampler,
            vocab_size: corpus.vocab_size(),
            num_docs: corpus.num_docs(),
            total_tokens: corpus.num_tokens() as u64,
            config,
            system,
            states,
            work_items,
            schedule,
            sync_plan,
            sim_time_s: 0.0,
            history: Vec::new(),
            base_iteration: 0,
            auto_tune_shards,
        })
    }

    /// Pick the smallest `M` such that the working set fits in device memory
    /// (`M = 1` needs one resident chunk; `M > 1` needs room for two chunks
    /// because of the double-buffered streaming, §5.1).
    fn choose_chunks_per_gpu(
        corpus: &Corpus,
        config: &LdaConfig,
        system: &MultiGpuSystem,
    ) -> Result<usize, TrainerError> {
        let g = system.num_gpus() as u64;
        let capacity = system.device(0).spec.mem_capacity_bytes;
        let phi_elem: u64 = if config.compress_16bit { 2 } else { 4 };
        // Two φ replicas (local + global) plus topic totals live on every GPU
        // regardless of M.
        let phi_bytes = 2 * (config.num_topics as u64 * corpus.vocab_size() as u64 * phi_elem)
            + config.num_topics as u64 * 16;
        // Per-token chunk footprint: word-major corpus (4), doc map (4),
        // token_doc (4), z + z_next (2×2), θ entry upper bound (6).
        let per_token: u64 = 4 + 4 + 4 + 4 + 6;
        let corpus_bytes = corpus.num_tokens() as u64 * per_token
            + corpus.num_docs() as u64 * 8
            + corpus.vocab_size() as u64 * 4;

        for m in 1..=1024u64 {
            let chunk_bytes = corpus_bytes.div_ceil(m * g);
            let resident = if m == 1 { chunk_bytes } else { 2 * chunk_bytes };
            if phi_bytes + resident <= capacity {
                return Ok(m as usize);
            }
        }
        Err(TrainerError::DeviceMemoryTooSmall {
            required: phi_bytes + corpus_bytes.div_ceil(1024 * g) * 2,
            capacity,
        })
    }

    /// The schedule (Resident ↔ `WorkSchedule1`, Streamed ↔ `WorkSchedule2`)
    /// the trainer selected.
    pub fn schedule(&self) -> ScheduleKind {
        self.schedule
    }

    /// The φ synchronization shard layout currently in effect.  With an
    /// explicit `LdaConfig::sync_shards(S)` this is fixed for the whole run
    /// (shard count clamped to the vocabulary); with the auto-tuned default
    /// (`sync_shards == None`) iteration 0 runs dense and this plan is
    /// replaced by the tuned one before iteration 1 (see
    /// [`CuLdaTrainer::run_iteration`]).
    pub fn sync_plan(&self) -> SyncPlan {
        self.sync_plan.base()
    }

    /// The full cluster-aware synchronization plan, including the
    /// hierarchical flag and the inter-node fabric group count (which only
    /// matter on a multi-node [`MultiGpuSystem::clustered`] system).
    pub fn hier_sync_plan(&self) -> HierarchicalSyncPlan {
        self.sync_plan
    }

    /// Candidate shard counts the auto-tuner evaluates (reused as the
    /// candidate fabric group counts on a cluster, capped at the shard
    /// count).
    const AUTO_SHARD_CANDIDATES: [usize; 5] = [1, 2, 4, 8, 16];

    /// Pick the synchronization plan from iteration 0's measured compute
    /// span (the ROADMAP follow-up to the PR-3 sharding): for each candidate
    /// shard count `S` — and, on a multi-node cluster with the hierarchical
    /// schedule, each candidate fabric group count `G ≤ S` — predict the
    /// iteration span with exactly the machinery the scheduler runs:
    /// token-balanced shard ranges, the per-shard tree costs of the system's
    /// collective model (two-tier on a cluster, with each group's fabric
    /// exchange folded into its last shard), and the overlapped-span
    /// pipeline.  Keep the fastest; ties go to fewer shards and coarser
    /// groups, and `S = 1` is always a candidate, so latency-bound
    /// configurations where sharding loses stay dense.  A knob the
    /// configuration fixes explicitly is held fixed and only the free ones
    /// are searched.  The choice affects *timing only*: sharding and the
    /// sync hierarchy are bit-neutral for the sampled assignments
    /// (DESIGN.md §8 and §14), which is what makes a timing-driven knob safe
    /// under the determinism contract.
    fn auto_tune_sync_plan(&self, measured_compute_s: f64) -> HierarchicalSyncPlan {
        let depth = self.config.sync_overlap_depth;
        let word_tokens = crate::sync::global_word_tokens(&self.states);
        let k = self.config.num_topics as u64;
        let elem_bytes: u64 = if self.config.compress_16bit { 2 } else { 4 };
        let nk_bytes = k * 8;
        let hierarchical = self.config.hierarchical_sync;
        let shard_candidates: Vec<usize> = match self.config.sync_shards {
            Some(s) => vec![s],
            None => Self::AUTO_SHARD_CANDIDATES.to_vec(),
        };
        let mut best_span = f64::INFINITY;
        let mut best_plan = HierarchicalSyncPlan::from_config(&self.config, self.vocab_size);
        for &candidate in &shard_candidates {
            let shards = candidate.clamp(1, self.vocab_size.max(1));
            let base = SyncPlan::new(shards, depth);
            let ranges = base.token_balanced_ranges(&word_tokens);
            let shard_bytes: Vec<u64> = ranges
                .iter()
                .enumerate()
                .map(|(s, range)| {
                    let mut bytes = k * range.len() as u64 * elem_bytes;
                    if s == ranges.len() - 1 {
                        bytes += nk_bytes;
                    }
                    bytes
                })
                .collect();
            let group_candidates: Vec<usize> = if !(hierarchical && self.system.num_nodes() > 1) {
                vec![1]
            } else if let Some(g) = self.config.sync_inter_groups {
                vec![g.clamp(1, ranges.len())]
            } else {
                let mut gs: Vec<usize> = Self::AUTO_SHARD_CANDIDATES
                    .iter()
                    .copied()
                    .filter(|&g| g <= ranges.len())
                    .collect();
                if gs.is_empty() {
                    gs.push(1);
                }
                gs
            };
            for &groups in &group_candidates {
                let plan = HierarchicalSyncPlan::new(base, hierarchical, groups);
                let (per_shard, _, _) =
                    crate::sync::hier_shard_times(&self.system, &shard_bytes, &plan);
                let span = if base.overlaps() {
                    let weights = crate::schedule::shard_token_weights(&word_tokens, &ranges);
                    let compute_shards: Vec<f64> =
                        weights.iter().map(|w| measured_compute_s * w).collect();
                    culda_gpusim::overlapped_span_s(&compute_shards, &per_shard, depth)
                } else {
                    measured_compute_s + per_shard.iter().sum::<f64>()
                };
                if span < best_span {
                    best_span = span;
                    best_plan = plan;
                }
            }
        }
        best_plan
    }

    /// The run configuration.
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// The pluggable sampler kernel driving this trainer's sampling launches
    /// (selected by [`LdaConfig::sampler`]).
    pub fn sampler_kernel(&self) -> &dyn SamplerKernel {
        &*self.sampler
    }

    /// The simulated GPU system the trainer runs on.
    pub fn system(&self) -> &MultiGpuSystem {
        &self.system
    }

    /// Number of corpus chunks (`C = M × G`).
    pub fn num_chunks(&self) -> usize {
        self.states.len()
    }

    /// Total tokens in the corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Vocabulary size `V`.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Number of documents `D`.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Total training iterations this model state has absorbed, including
    /// iterations run before a checkpoint resume.
    pub fn completed_iterations(&self) -> u64 {
        self.base_iteration + self.history.len() as u64
    }

    /// Accumulated simulated training time.
    pub fn sim_time_s(&self) -> f64 {
        self.sim_time_s
    }

    /// Per-iteration statistics recorded so far.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Run one training iteration (a full pass over every token).
    ///
    /// Under the auto-tuned synchronization default
    /// (`LdaConfig::sync_shards == None`), the first iteration of a
    /// multi-GPU trainer runs the dense §5.2 reduce, and its measured
    /// compute span drives the cost-model prediction that picks the plan
    /// every later iteration uses (see `auto_tune_sync_plan` and
    /// DESIGN.md §8).
    pub fn run_iteration(&mut self) -> IterationStats {
        let stats = run_iteration(
            &self.states,
            &self.work_items,
            &self.system,
            &self.config,
            &*self.sampler,
            self.schedule,
            &self.sync_plan,
            self.base_iteration + self.history.len() as u64,
        );
        if std::mem::take(&mut self.auto_tune_shards) {
            // Iteration 0 may have paid one-off sampler setup (e.g. a full
            // alias-table build); let the sampler amortise it before the
            // span prediction, so periodic work does not skew the plan.
            let steady = self
                .sampler
                .predict_steady_compute_s(stats.compute_time_s, stats.sampler_setup_time_s);
            self.sync_plan = self.auto_tune_sync_plan(steady);
        }
        self.sim_time_s += stats.sim_time_s;
        self.history.push(stats);
        stats
    }

    /// Run `iterations` iterations and return the recorded statistics.
    pub fn train(&mut self, iterations: usize) -> &[IterationStats] {
        for _ in 0..iterations {
            self.run_iteration();
        }
        self.history()
    }

    /// Run `iterations` iterations, invoking `callback(iteration_index,
    /// stats, trainer)` after each one (used to record convergence
    /// timelines without re-implementing the loop).
    pub fn train_with(
        &mut self,
        iterations: usize,
        mut callback: impl FnMut(usize, IterationStats, &Self),
    ) {
        for i in 0..iterations {
            let stats = self.run_iteration();
            callback(i, stats, self);
        }
    }

    /// The topic assignment of every token, per document in corpus order and
    /// per token in original document order — regardless of how the corpus
    /// is chunked internally.  Two trainers with the same seed produce the
    /// same snapshot whatever their GPU topology; the determinism tests in
    /// `culda-testkit` rely on exactly this.
    pub fn z_snapshot(&self) -> Vec<Vec<u16>> {
        let mut docs = Vec::with_capacity(self.num_docs);
        for state in &self.states {
            for d in 0..state.layout.num_docs() {
                let row: Vec<u16> = state
                    .layout
                    .doc_positions(d)
                    .iter()
                    .map(|&pos| state.z[pos as usize].load(std::sync::atomic::Ordering::Relaxed))
                    .collect();
                docs.push(row);
            }
        }
        docs
    }

    /// The full document–topic matrix θ (documents in corpus order).
    pub fn merged_theta(&self) -> CsrMatrix {
        let mut builder = CsrBuilder::new(self.num_docs, self.config.num_topics);
        builder.reserve_nnz(self.total_tokens as usize);
        for state in &self.states {
            let theta = state.theta.read();
            for d in 0..theta.rows() {
                let (cols, vals) = theta.row(d);
                builder.push_row(cols.iter().copied().zip(vals.iter().copied()));
            }
        }
        builder.finish()
    }

    /// The synchronized global topic–word matrix φ (`K × V`).
    pub fn global_phi(&self) -> DenseMatrix<u32> {
        self.states[0].phi_global.to_dense()
    }

    /// The global topic totals `n_k`.
    pub fn global_nk(&self) -> Vec<i64> {
        self.states[0].nk_global.to_vec()
    }

    /// The `n` highest-count words of a topic (for qualitative inspection).
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<(u32, u32)> {
        let phi = self.global_phi();
        let mut pairs: Vec<(u32, u32)> = phi
            .row(topic)
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(w, &c)| (w as u32, c))
            .collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }

    /// Per-iteration throughput in tokens/second (Eq. 2, the y-axis of Fig. 7).
    pub fn throughput_per_iteration(&self) -> Vec<f64> {
        self.history
            .iter()
            .map(|h| h.tokens_processed as f64 / h.sim_time_s)
            .collect()
    }

    /// Average tokens/second over the first `n` recorded iterations (Table 4).
    pub fn average_throughput(&self, n: usize) -> f64 {
        let n = n.min(self.history.len());
        if n == 0 {
            return 0.0;
        }
        let time: f64 = self.history[..n].iter().map(|h| h.sim_time_s).sum();
        let tokens: f64 = self.history[..n]
            .iter()
            .map(|h| h.tokens_processed as f64)
            .sum();
        tokens / time
    }

    /// Per-kernel execution-time breakdown across all devices (Table 5).
    pub fn kernel_breakdown(&self) -> Vec<(String, f64)> {
        self.system.aggregate_breakdown()
    }

    /// Verify that every chunk's counts are internally consistent and that
    /// the global counts cover exactly the corpus (used by integration tests
    /// and exposed for callers who want to assert invariants mid-run).
    pub fn validate(&self) -> Result<(), String> {
        for state in &self.states {
            state.validate_counts()?;
        }
        let total: u64 = self.global_phi().total();
        if total != self.total_tokens {
            return Err(format!(
                "global φ covers {total} tokens, corpus has {}",
                self.total_tokens
            ));
        }
        let theta_total = self.merged_theta().total();
        if theta_total != self.total_tokens {
            return Err(format!(
                "merged θ covers {theta_total} tokens, corpus has {}",
                self.total_tokens
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;
    use culda_gpusim::{DeviceSpec, Interconnect};

    /// The non-deprecated construction path (what `SessionBuilder::build`
    /// calls); the deprecated positional shims are covered by an explicit
    /// equivalence test in `crate::session`.
    fn build(
        corpus: &Corpus,
        config: LdaConfig,
        system: MultiGpuSystem,
    ) -> Result<CuLdaTrainer, TrainerError> {
        CuLdaTrainer::from_parts(corpus, config, system, None, None)
    }

    fn small_corpus() -> Corpus {
        DatasetProfile {
            name: "trainer".into(),
            num_docs: 150,
            vocab_size: 120,
            avg_doc_len: 18.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(33)
    }

    #[test]
    fn trainer_initialises_consistently() {
        let corpus = small_corpus();
        let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 1);
        let trainer = build(&corpus, LdaConfig::with_topics(16).seed(5), system).unwrap();
        assert_eq!(trainer.schedule(), ScheduleKind::Resident);
        assert_eq!(trainer.num_chunks(), 1);
        assert_eq!(trainer.total_tokens(), corpus.num_tokens() as u64);
        trainer.validate().unwrap();
    }

    #[test]
    fn training_improves_likelihood_and_sparsifies_theta() {
        let corpus = small_corpus();
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 2);
        let mut trainer = build(&corpus, LdaConfig::with_topics(16).seed(7), system).unwrap();
        let cfg = trainer.config().clone();
        let ll_before = culda_metrics::log_likelihood(
            &trainer.merged_theta(),
            &trainer.global_phi(),
            &trainer.global_nk(),
            cfg.alpha,
            cfg.beta,
        )
        .per_token();
        let nnz_before = trainer.merged_theta().nnz();
        trainer.train(12);
        trainer.validate().unwrap();
        let ll_after = culda_metrics::log_likelihood(
            &trainer.merged_theta(),
            &trainer.global_phi(),
            &trainer.global_nk(),
            cfg.alpha,
            cfg.beta,
        )
        .per_token();
        let nnz_after = trainer.merged_theta().nnz();
        assert!(ll_after > ll_before, "LL {ll_before} → {ll_after}");
        assert!(nnz_after < nnz_before, "θ nnz {nnz_before} → {nnz_after}");
        assert_eq!(trainer.history().len(), 12);
        assert!(trainer.sim_time_s() > 0.0);
        assert!(trainer.average_throughput(12) > 0.0);
    }

    #[test]
    fn multi_gpu_trainer_distributes_chunks_round_robin() {
        let corpus = small_corpus();
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 11, Interconnect::Pcie3);
        let mut trainer = build(&corpus, LdaConfig::with_topics(8).seed(1), system).unwrap();
        assert_eq!(trainer.num_chunks(), 4);
        trainer.train(3);
        trainer.validate().unwrap();
        // Every device must have recorded some sampling time.
        for d in trainer.system().devices() {
            assert!(d.busy_time_s() > 0.0, "device {} idle", d.id);
        }
    }

    #[test]
    fn forced_streaming_schedule_is_respected() {
        let corpus = small_corpus();
        let system = MultiGpuSystem::single(DeviceSpec::gtx_1080(), 3);
        let mut trainer = build(
            &corpus,
            LdaConfig::with_topics(8).seed(3).chunks_per_gpu(3),
            system,
        )
        .unwrap();
        assert_eq!(
            trainer.schedule(),
            ScheduleKind::Streamed { chunks_per_gpu: 3 }
        );
        assert_eq!(trainer.num_chunks(), 3);
        let stats = trainer.run_iteration();
        assert!(stats.transfer_time_s > 0.0);
        trainer.validate().unwrap();
    }

    #[test]
    fn invalid_configs_and_empty_corpora_are_rejected() {
        let corpus = small_corpus();
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 0);
        assert!(matches!(
            build(&corpus, LdaConfig::with_topics(1), system),
            Err(TrainerError::InvalidConfig(_))
        ));
        let empty = culda_corpus::CorpusBuilder::new(10).build();
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 0);
        assert!(matches!(
            build(&empty, LdaConfig::with_topics(4), system),
            Err(TrainerError::EmptyCorpus)
        ));
    }

    #[test]
    fn top_words_are_sorted_by_count() {
        let corpus = small_corpus();
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 5);
        let mut trainer = build(&corpus, LdaConfig::with_topics(8).seed(9), system).unwrap();
        trainer.train(3);
        let top = trainer.top_words(0, 5);
        assert!(top.len() <= 5);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn auto_tune_stays_dense_where_sharding_loses() {
        // Tiny replica on a tiny corpus: the per-shard round latencies
        // dominate, so the predicted span is minimised by the dense plan —
        // the tuner must not make the run slower than S = 1.
        let corpus = small_corpus();
        let mk_system = || {
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 2, Interconnect::Pcie3)
        };
        let mut auto = build(&corpus, LdaConfig::with_topics(16).seed(2), mk_system()).unwrap();
        assert!(auto.sync_plan().is_dense(), "iteration 0 runs dense");
        auto.train(4);
        let mut dense = build(
            &corpus,
            LdaConfig::with_topics(16).seed(2).sync_shards(1),
            mk_system(),
        )
        .unwrap();
        dense.train(4);
        // Bit-neutrality holds whatever the tuner picked...
        assert_eq!(auto.z_snapshot(), dense.z_snapshot());
        // ...and on this latency-bound configuration it must pick dense.
        assert!(
            auto.sync_plan().is_dense(),
            "latency-bound run must stay dense, got {:?}",
            auto.sync_plan()
        );
        assert!(auto.sim_time_s() <= dense.sim_time_s() * (1.0 + 1e-9));
        // Single-GPU runs never auto-shard (there is nothing to reduce).
        let single = build(
            &corpus,
            LdaConfig::with_topics(16).seed(2),
            MultiGpuSystem::single(DeviceSpec::v100_volta(), 2),
        )
        .unwrap();
        assert!(single.sync_plan().is_dense());
    }

    #[test]
    fn auto_tune_shards_where_the_overlap_wins_and_never_slows_the_run() {
        // The bandwidth-bound regime of tests/sharded_sync.rs: a φ replica
        // large enough that the reduce is bandwidth-dominated and a corpus
        // heavy enough that sampling can hide the per-shard reduces.
        let corpus = DatasetProfile {
            name: "auto-tune".into(),
            num_docs: 900,
            vocab_size: 4000,
            avg_doc_len: 330.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(11);
        let mk_system = || {
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 11, Interconnect::Pcie3)
        };
        let mut auto = build(&corpus, LdaConfig::with_topics(160).seed(11), mk_system()).unwrap();
        auto.train(3);
        let mut dense = build(
            &corpus,
            LdaConfig::with_topics(160).seed(11).sync_shards(1),
            mk_system(),
        )
        .unwrap();
        dense.train(3);
        assert_eq!(
            auto.z_snapshot(),
            dense.z_snapshot(),
            "sharding is bit-neutral"
        );
        assert!(
            auto.sync_plan().shards() > 1,
            "bandwidth-bound run should auto-shard, got {:?}",
            auto.sync_plan()
        );
        // Iteration 0 is identical (dense measurement pass); the prediction
        // uses the same cost model the scheduler charges, so the tuned
        // iterations can only be at least as fast as the dense ones.
        assert!(
            auto.sim_time_s() <= dense.sim_time_s() * (1.0 + 1e-9),
            "auto {} vs dense {}",
            auto.sim_time_s(),
            dense.sim_time_s()
        );
    }

    #[test]
    fn kernel_breakdown_is_dominated_by_sampling() {
        // A corpus with realistic document lengths: sampling cost per token is
        // proportional to K_d, which is what makes it dominate (Table 5).
        let corpus = DatasetProfile {
            name: "breakdown".into(),
            num_docs: 1500,
            vocab_size: 300,
            avg_doc_len: 60.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(8);
        let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 5);
        let mut trainer = build(&corpus, LdaConfig::with_topics(64).seed(9), system).unwrap();
        trainer.train(5);
        let breakdown = trainer.kernel_breakdown();
        assert_eq!(breakdown[0].0, crate::kernels::names::SAMPLING);
        assert!(breakdown[0].1 > 50.0, "sampling only {}%", breakdown[0].1);
    }
}
