//! Property-based tests for the core crate's serving-path additions:
//! fold-in inference, checkpoint serialisation and the hyper-parameter /
//! convergence utilities must be well-behaved for arbitrary inputs.

use culda_core::checkpoint::ModelCheckpoint;
use culda_core::convergence::{ConvergenceMonitor, EarlyStopper};
use culda_core::hyper::{digamma, optimize_alpha, HyperOptOptions};
use culda_core::inference::{InferenceOptions, TopicInferencer};
use culda_core::{SamplerStrategy, SyncPlan};
use culda_sparse::{CsrBuilder, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// Strategy: arbitrary topic–word counts (`K × V`) with the matching `n_k`.
fn arb_phi(max_k: usize, max_v: usize) -> impl Strategy<Value = (DenseMatrix<u32>, Vec<i64>)> {
    (2..=max_k, 2..=max_v).prop_flat_map(|(k, v)| {
        prop::collection::vec(0u32..50, k * v).prop_map(move |data| {
            let phi = DenseMatrix::from_vec(k, v, data);
            let nk: Vec<i64> = phi.row_sums().iter().map(|&s| s as i64).collect();
            (phi, nk)
        })
    })
}

/// Strategy: an arbitrary document over a vocabulary of size `v`.
fn arb_doc(v: usize, max_len: usize) -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0..v as u32, 0..=max_len)
}

/// A consistent (θ, φ, nk) state built from per-token assignments, so the
/// checkpoint validation invariants hold by construction.
fn arb_consistent_state(
) -> impl Strategy<Value = (usize, usize, CsrMatrix, DenseMatrix<u32>, Vec<i64>)> {
    (2usize..6, 2usize..12, 1usize..15).prop_flat_map(|(k, v, docs)| {
        prop::collection::vec(prop::collection::vec((0..k, 0..v), 0..=20), docs).prop_map(
            move |assignments| {
                let mut phi = DenseMatrix::zeros(k, v);
                let mut nk = vec![0i64; k];
                let mut builder = CsrBuilder::new(assignments.len(), k);
                for doc in &assignments {
                    let mut row = vec![0u32; k];
                    for &(topic, word) in doc {
                        *phi.get_mut(topic, word) += 1;
                        nk[topic] += 1;
                        row[topic] += 1;
                    }
                    builder.push_dense_row(&row);
                }
                (k, v, builder.finish(), phi, nk)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        failure_persistence: FileFailurePersistence::WithSource("proptest-regressions"),
        ..ProptestConfig::default()
    })]

    #[test]
    fn inferred_mixtures_are_probability_distributions(
        (phi, nk) in arb_phi(8, 20),
        doc in arb_doc(20, 40),
        seed in any::<u64>(),
    ) {
        let inferencer = TopicInferencer::new(&phi, &nk, 0.1, 0.01);
        let opts = InferenceOptions { sweeps: 8, burn_in: 2, seed };
        let result = inferencer.infer_document(&doc, opts);
        prop_assert_eq!(result.mixture.len(), phi.rows());
        let sum: f64 = result.mixture.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "mixture sums to {}", sum);
        prop_assert!(result.mixture.iter().all(|&p| p > 0.0 && p <= 1.0));
        // Deterministic for a fixed seed.
        let again = inferencer.infer_document(&doc, opts);
        prop_assert_eq!(result, again);
    }

    #[test]
    fn out_of_vocabulary_words_never_change_the_answer(
        (phi, nk) in arb_phi(6, 15),
        doc in arb_doc(15, 25),
        seed in any::<u64>(),
    ) {
        let v = phi.cols() as u32;
        let inferencer = TopicInferencer::new(&phi, &nk, 0.2, 0.01);
        let opts = InferenceOptions { sweeps: 6, burn_in: 1, seed };
        let clean = inferencer.infer_document(&doc, opts);
        // Splice out-of-vocabulary ids into the document; they must be
        // ignored entirely.
        let mut noisy = doc.clone();
        noisy.push(v + 100);
        noisy.insert(0, v);
        let with_oov = inferencer.infer_document(&noisy, opts);
        prop_assert_eq!(clean, with_oov);
    }

    #[test]
    fn checkpoints_roundtrip_for_arbitrary_consistent_states(
        (k, _v, theta, phi, nk) in arb_consistent_state(),
        alpha in 0.01f64..2.0,
        beta in 0.001f64..0.5,
    ) {
        let ckpt = ModelCheckpoint {
            num_topics: k,
            vocab_size: phi.cols(),
            alpha,
            beta,
            nk,
            phi,
            theta,
            seed: 0,
            iterations: 0,
            z: None,
            sampler: SamplerStrategy::SparseCgs,
            sampler_state: None,
        };
        prop_assert!(ckpt.validate().is_ok());
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back, ckpt);
    }

    #[test]
    fn digamma_satisfies_the_recurrence_everywhere(x in 0.01f64..500.0) {
        let lhs = digamma(x + 1.0);
        let rhs = digamma(x) + 1.0 / x;
        prop_assert!((lhs - rhs).abs() < 1e-8, "Ψ({x}+1) = {lhs} vs {rhs}");
        // Ψ is increasing for positive arguments.
        prop_assert!(digamma(x + 0.5) > digamma(x));
    }

    #[test]
    fn optimized_alpha_stays_positive_and_clamped(
        (_k, _v, theta, _phi, _nk) in arb_consistent_state(),
        alpha0 in 0.01f64..5.0,
    ) {
        let opts = HyperOptOptions::default();
        let update = optimize_alpha(&theta, alpha0, opts);
        prop_assert!(update.value >= opts.min_value);
        prop_assert!(update.value <= opts.max_value);
        prop_assert!(update.value.is_finite());
        prop_assert!(update.iterations <= opts.max_iterations);
    }

    #[test]
    fn convergence_monitor_always_fires_on_a_constant_series(
        value in -100.0f64..-0.1,
        window in 1usize..6,
    ) {
        let mut m = ConvergenceMonitor::new(1e-6, window);
        for i in 0..window + 1 {
            let converged = m.push(value);
            if i >= window {
                prop_assert!(converged);
            }
        }
        prop_assert!(m.converged());
        prop_assert_eq!(m.iterations(), window + 1);
    }

    #[test]
    fn early_stopper_never_stops_while_scores_keep_improving(
        start in -50.0f64..0.0,
        steps in 1usize..30,
        patience in 1usize..5,
    ) {
        let mut s = EarlyStopper::new(patience, 0.0);
        for i in 0..steps {
            let stop = s.push(start + (i as f64 + 1.0));
            prop_assert!(!stop, "stopped at step {i} despite monotone improvement");
        }
        prop_assert_eq!(s.best_index(), steps);
    }

    /// Token-balanced shard ranges partition `0..V` exactly — contiguous,
    /// monotone, no gap, no overlap, no empty shard — for arbitrary token
    /// histograms (including all-zero words and total = 0), shard counts
    /// that do not divide `V`, and more shards than columns.
    #[test]
    fn token_balanced_ranges_cover_the_vocabulary_exactly(
        word_tokens in prop::collection::vec(0u64..500, 1..64),
        shards in 1usize..80,
        depth in 0usize..4,
    ) {
        let v = word_tokens.len();
        let plan = SyncPlan::new(shards, depth);
        let ranges = plan.token_balanced_ranges(&word_tokens);
        prop_assert_eq!(ranges.len(), shards.min(v), "one range per (clamped) shard");
        let mut expected_start = 0usize;
        for (i, r) in ranges.iter().enumerate() {
            prop_assert_eq!(r.start, expected_start, "gap or overlap before shard {i}");
            prop_assert!(r.start < r.end, "empty shard {i}: {r:?}");
            expected_start = r.end;
        }
        prop_assert_eq!(expected_start, v, "ranges must end exactly at V");
    }
}
