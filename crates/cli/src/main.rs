//! The `culda-cli` binary: parse arguments, dispatch, print the report.

use culda_cli::{run, CliError, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(CliError::Usage(msg)) => {
            eprintln!("usage error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
