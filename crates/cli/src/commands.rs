//! Implementations of the CLI subcommands.
//!
//! Every command is a pure function from parsed arguments to a report
//! `String`, so the unit tests can exercise full command flows without
//! touching stdout; `main` simply prints whatever comes back.

use crate::args::{ArgError, ParsedArgs};
use crate::CliError;
use culda_core::{
    CuLdaTrainer, InferenceOptions, LdaConfig, ModelCheckpoint, SamplerStrategy, SessionBuilder,
    StreamingSession, TopicInferencer,
};
use culda_corpus::{holdout::DocumentCompletion, Corpus, CorpusStats, DatasetProfile, Document};
use culda_gpusim::{ClusterSystem, DeviceSpec, Interconnect, MultiGpuSystem};
use culda_metrics::{coherence::topic_quality_report, heldout::evaluate_heldout, log_likelihood};
use std::fmt::Write as _;

/// Usage text printed by `help` and on argument errors.
pub const USAGE: &str = "\
culda-cli — CuLDA_CGS (PPoPP'19) reproduction command line

USAGE:
    culda-cli <COMMAND> [OPTIONS]

COMMANDS:
    platforms       List the simulated device presets (Table 2 and beyond)
    gen-corpus      Generate a synthetic corpus snapshot
                      --profile nytimes|pubmed  --tokens N  --seed S  --out FILE
    stats           Print Table-3 style statistics for a corpus snapshot
                      --corpus FILE
    train           Train CuLDA_CGS on a corpus
                      --corpus FILE | --profile P --tokens N
                      [--topics K] [--iterations N] [--gpus G] [--device NAME]
                      [--seed S] [--save-model FILE] [--optimize-priors]
                      [--sync-shards S|auto] shard the φ synchronization into
                                            S vocabulary ranges; `auto` (the
                                            default) picks S from the
                                            measured compute/sync ratio of
                                            iteration 0, `1` forces the
                                            paper's dense reduce
                      [--overlap-depth D]   shard reduces in flight while
                                            sampling continues (default 2;
                                            0 disables the overlap)
                      [--nodes N]           simulate an N-node cluster of
                                            --gpus GPUs each (N × G devices
                                            total); φ is synchronized
                                            hierarchically: per-node tree
                                            reduce, one exchange of the
                                            reduced shards over the fabric,
                                            per-node broadcast back
                      [--inter-link L]      inter-node fabric for --nodes:
                                            ethernet (10 GbE, default),
                                            infiniband, pcie3 or nvlink
                      [--sampler S]         sampler kernel: `sparse` (the
                                            paper's exact S/Q kernel, the
                                            default), `alias[:R]` (stale
                                            alias tables rebuilt every R
                                            iterations — default 8 — with
                                            MH correction), `light[:M]`
                                            (LightLDA-style cycle MH with M
                                            doc/word proposal steps — default
                                            4), or `auto` (measure the corpus
                                            and pick the fastest kernel)
                      [--resume-from FILE]  continue exactly from a saved
                                            model's assignment state (the
                                            checkpoint's sampler strategy
                                            is preserved)
    stream          Stream a corpus into a live model in mini-batches
                    (ingest -> train -> retire -> rotate checkpoints)
                      --corpus FILE | --profile P --tokens N
                      [--topics K] [--gpus G] [--device NAME] [--seed S]
                      [--batch-docs B]      documents ingested per mini-batch
                                            (default 256)
                      [--iterations-per-batch I]  training iterations after
                                            each ingested batch (default 2)
                      [--window W]          retire the oldest documents so at
                                            most W stay live (0 = keep all)
                      [--burn-in S]         Gibbs sweeps burning each new
                                            document in (default 1)
                      [--sampler S]         sampler kernel, as in `train`
                                            (burn-in routes through it too)
                      [--checkpoint-dir D]  rotate checkpoint sets into D
                                            after each batch
                      [--keep-last N]       checkpoint sets retained
                                            (default 3)
                      [--resume]            resume the session from the
                                            latest set in --checkpoint-dir
                                            before streaming
                      [--nodes N] [--inter-link L]  multi-node cluster
                                            simulation, as in `train`
    serve           Stream a corpus into a live model while query threads
                    answer fold-in inference against epoch-published
                    snapshots; reports p50/p99 query latency and QPS
                      --corpus FILE | --profile P --tokens N
                      [--topics K] [--gpus G] [--device NAME] [--seed S]
                      [--batch-docs B]      documents ingested per mini-batch
                                            (default 256)
                      [--iterations-per-batch I]  training iterations after
                                            each ingested batch (default 2)
                      [--query-threads T]   concurrent reader threads
                                            (default 2)
                      [--query-batch Q]     queries per inference batch, all
                                            answered against one frozen
                                            snapshot (default 8)
                      [--sweeps N]          fold-in Gibbs sweeps per query
                                            (default 5)
                      [--nodes N] [--inter-link L]  multi-node cluster
                                            simulation, as in `train`
    topics          Show the top words of every topic of a saved model
                      --model FILE [--top N]
    infer           Infer the topic mixture of new text or a corpus
                      --model FILE (--text \"...\" | --corpus FILE) [--sweeps N]
    eval            Held-out perplexity of a saved model on a test corpus
                      --model FILE --corpus FILE [--heldout-fraction F]
    help            Show this message

DEVICES: maxwell | pascal | volta (default) | gtx1080 | k40 | p100 | a100 | cpu
";

/// Resolve a `--device` name to a spec.
pub fn device_by_name(name: &str) -> Result<DeviceSpec, CliError> {
    let spec = match name.to_ascii_lowercase().as_str() {
        "maxwell" | "titanx" | "titan-x" => DeviceSpec::titan_x_maxwell(),
        "pascal" | "titanxp" | "titan-xp" => DeviceSpec::titan_xp_pascal(),
        "volta" | "v100" => DeviceSpec::v100_volta(),
        "gtx1080" | "1080" => DeviceSpec::gtx_1080(),
        "k40" | "kepler" => DeviceSpec::k40_kepler(),
        "p100" => DeviceSpec::p100_pascal(),
        "a100" | "ampere" => DeviceSpec::a100_ampere(),
        "cpu" | "xeon" => DeviceSpec::xeon_e5_2690v4(),
        other => return Err(CliError::Usage(format!("unknown device `{other}`"))),
    };
    Ok(spec)
}

/// Resolve a `--profile` name to a dataset profile.
pub fn profile_by_name(name: &str) -> Result<DatasetProfile, CliError> {
    match name.to_ascii_lowercase().as_str() {
        "nytimes" | "nyt" => Ok(DatasetProfile::nytimes()),
        "pubmed" => Ok(DatasetProfile::pubmed()),
        other => Err(CliError::Usage(format!(
            "unknown profile `{other}` (expected nytimes or pubmed)"
        ))),
    }
}

/// `--sync-shards auto|N` → `None` (auto-tune) or `Some(N)`.
fn parse_sync_shards(args: &ParsedArgs) -> Result<Option<usize>, CliError> {
    match args.get("sync-shards") {
        None => Ok(None),
        Some(raw) if raw.eq_ignore_ascii_case("auto") => Ok(None),
        Some(raw) => raw.parse().map(Some).map_err(|_| {
            CliError::Usage(format!(
                "--sync-shards {raw}: expected a positive integer or `auto`"
            ))
        }),
    }
}

/// `--inter-link ethernet|infiniband|pcie3|nvlink` → the inter-node fabric,
/// 10 GbE (the LDA* cluster network) when absent.
fn parse_inter_link(args: &ParsedArgs) -> Result<Interconnect, CliError> {
    match args.get("inter-link") {
        None => Ok(Interconnect::Ethernet10G),
        Some(raw) => match raw.to_ascii_lowercase().as_str() {
            "ethernet" | "eth" | "10gbe" => Ok(Interconnect::Ethernet10G),
            "infiniband" | "ib" | "edr" => Ok(Interconnect::InfinibandEdr),
            "pcie" | "pcie3" => Ok(Interconnect::Pcie3),
            "nvlink" => Ok(Interconnect::NvLink),
            other => Err(CliError::Usage(format!(
                "--inter-link {other}: expected `ethernet`, `infiniband`, `pcie3` or `nvlink`"
            ))),
        },
    }
}

/// Human-readable name of an interconnect for the `system:` report line.
fn link_name(link: Interconnect) -> &'static str {
    match link {
        Interconnect::Ethernet10G => "10 GbE",
        Interconnect::InfinibandEdr => "InfiniBand EDR",
        Interconnect::Pcie3 => "PCIe 3.0",
        Interconnect::NvLink => "NVLink",
        Interconnect::Custom { .. } => "custom link",
    }
}

/// Build the simulated system from `--gpus`, `--nodes` and `--inter-link`:
/// a single device, a single-node multi-GPU system over PCIe, or — with
/// `--nodes N > 1` — an `N × --gpus` cluster whose nodes talk over the
/// `--inter-link` fabric.  Returns the system plus the label the commands
/// print as their `system:` line.
fn system_from_args(
    args: &ParsedArgs,
    device: &DeviceSpec,
    seed: u64,
) -> Result<(MultiGpuSystem, String), CliError> {
    let gpus: usize = args.get_parsed_or("gpus", 1usize)?;
    let nodes: usize = args.get_parsed_or("nodes", 1usize)?;
    if gpus == 0 || nodes == 0 {
        return Err(CliError::Usage(
            "--gpus and --nodes must be positive".into(),
        ));
    }
    if nodes == 1 {
        if args.get("inter-link").is_some() {
            return Err(CliError::Usage(
                "--inter-link only applies to a cluster; pass --nodes N with N > 1".into(),
            ));
        }
        let system = if gpus <= 1 {
            MultiGpuSystem::single(device.clone(), seed)
        } else {
            MultiGpuSystem::homogeneous(device.clone(), gpus, seed, Interconnect::Pcie3)
        };
        return Ok((system, format!("{} × {}", gpus, device.name)));
    }
    let inter_link = parse_inter_link(args)?;
    let system = ClusterSystem::homogeneous(
        device.clone(),
        nodes,
        gpus,
        seed,
        Interconnect::Pcie3,
        inter_link,
    )
    .into_system();
    let label = format!(
        "{nodes} nodes × {gpus} × {} over {}",
        device.name,
        link_name(inter_link)
    );
    Ok((system, label))
}

/// `--sampler sparse|alias[:rebuild_every]|light[:mh_steps]|auto` → a
/// strategy, `None` when the option is absent (callers default to the
/// checkpoint's strategy on resume, to sparse-CGS otherwise).  `auto` defers
/// the choice to the measured portfolio selection at construction.
fn parse_sampler(args: &ParsedArgs) -> Result<Option<SamplerStrategy>, CliError> {
    let Some(raw) = args.get("sampler") else {
        return Ok(None);
    };
    let lower = raw.to_ascii_lowercase();
    if lower == "sparse" || lower == "sparse-cgs" {
        return Ok(Some(SamplerStrategy::SparseCgs));
    }
    if lower == "alias" {
        return Ok(Some(SamplerStrategy::alias_hybrid()));
    }
    if let Some(cadence) = lower.strip_prefix("alias:") {
        let rebuild_every: usize = cadence.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
            CliError::Usage(format!(
                "--sampler {raw}: rebuild cadence `{cadence}` must be a positive integer"
            ))
        })?;
        let SamplerStrategy::AliasHybrid { mh_steps, .. } = SamplerStrategy::alias_hybrid() else {
            unreachable!("alias_hybrid() is the alias variant");
        };
        return Ok(Some(SamplerStrategy::AliasHybrid {
            rebuild_every,
            mh_steps,
        }));
    }
    if lower == "light" {
        return Ok(Some(SamplerStrategy::light_lda()));
    }
    if let Some(steps) = lower.strip_prefix("light:") {
        let mh_steps: usize = steps.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
            CliError::Usage(format!(
                "--sampler {raw}: MH step count `{steps}` must be a positive integer"
            ))
        })?;
        let SamplerStrategy::LightLda {
            rebuild_every,
            prune_below,
            ..
        } = SamplerStrategy::light_lda()
        else {
            unreachable!("light_lda() is the light variant");
        };
        return Ok(Some(SamplerStrategy::LightLda {
            rebuild_every,
            mh_steps,
            prune_below,
        }));
    }
    if lower == "auto" {
        return Ok(Some(SamplerStrategy::Auto));
    }
    Err(CliError::Usage(format!(
        "--sampler {raw}: expected `sparse`, `alias[:rebuild_every]`, `light[:mh_steps]` or `auto`"
    )))
}

/// Load a corpus from `--corpus`, or generate one from `--profile`/`--tokens`.
fn corpus_from_args(args: &ParsedArgs) -> Result<(Corpus, String), CliError> {
    if let Some(path) = args.get("corpus") {
        let corpus = culda_corpus::load_corpus(&path)
            .map_err(|e| CliError::Runtime(format!("failed to load {path}: {e}")))?;
        return Ok((corpus, path));
    }
    let profile = profile_by_name(&args.get("profile").unwrap_or_else(|| "nytimes".into()))?;
    let tokens: u64 = args.get_parsed_or("tokens", 200_000u64)?;
    let seed: u64 = args.get_parsed_or("seed", 42u64)?;
    let profile = profile.scaled_to_tokens(tokens);
    let name = format!("{} (synthetic, ~{} tokens)", profile.name, tokens);
    Ok((profile.generate(seed), name))
}

/// `platforms` — list the device presets.
pub fn platforms(args: &ParsedArgs) -> Result<String, CliError> {
    args.reject_unknown()?;
    let specs = [
        DeviceSpec::xeon_e5_2670(),
        DeviceSpec::xeon_e5_2690v4(),
        DeviceSpec::k40_kepler(),
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::gtx_1080(),
        DeviceSpec::titan_xp_pascal(),
        DeviceSpec::p100_pascal(),
        DeviceSpec::v100_volta(),
        DeviceSpec::a100_ampere(),
    ];
    let mut out = String::new();
    writeln!(
        out,
        "{:<28} {:>6} {:>10} {:>12} {:>10}",
        "Device", "SMs", "BW (GB/s)", "Peak GFLOPS", "Mem (GiB)"
    )
    .unwrap();
    for s in specs {
        writeln!(
            out,
            "{:<28} {:>6} {:>10.0} {:>12.0} {:>10.0}",
            s.name,
            s.sm_count,
            s.mem_bandwidth_gbps,
            s.peak_gflops,
            s.mem_capacity_bytes as f64 / (1u64 << 30) as f64
        )
        .unwrap();
    }
    Ok(out)
}

/// `gen-corpus` — generate and save a synthetic corpus snapshot.
pub fn gen_corpus(args: &ParsedArgs) -> Result<String, CliError> {
    let out_path = args.require("out")?;
    let profile = profile_by_name(&args.get("profile").unwrap_or_else(|| "nytimes".into()))?;
    let tokens: u64 = args.get_parsed_or("tokens", 200_000u64)?;
    let seed: u64 = args.get_parsed_or("seed", 42u64)?;
    args.reject_unknown()?;
    let corpus = profile.scaled_to_tokens(tokens).generate(seed);
    culda_corpus::save_corpus(&corpus, &out_path)
        .map_err(|e| CliError::Runtime(format!("failed to write {out_path}: {e}")))?;
    let stats = CorpusStats::compute(profile.name.clone(), &corpus);
    Ok(format!(
        "wrote {} ({} documents, {} tokens, V = {})\n{}\n",
        out_path,
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size(),
        stats.table3_row()
    ))
}

/// `stats` — Table-3 style statistics of a corpus snapshot.
pub fn stats(args: &ParsedArgs) -> Result<String, CliError> {
    let path = args.require("corpus")?;
    args.reject_unknown()?;
    let corpus = culda_corpus::load_corpus(&path)
        .map_err(|e| CliError::Runtime(format!("failed to load {path}: {e}")))?;
    let stats = CorpusStats::compute(path.clone(), &corpus);
    Ok(format!("{}\n", stats.table3_row()))
}

/// `train` — run CuLDA_CGS training and optionally save a model checkpoint.
pub fn train(args: &ParsedArgs) -> Result<String, CliError> {
    let (corpus, corpus_name) = corpus_from_args(args)?;
    let resume_from = args.get("resume-from");
    let resume = match &resume_from {
        None => None,
        Some(path) => {
            let ckpt = ModelCheckpoint::load(path)
                .map_err(|e| CliError::Runtime(format!("failed to load {path}: {e}")))?;
            if ckpt.z.is_none() {
                return Err(CliError::Runtime(format!(
                    "{path} stores no assignment state; only checkpoints saved \
                     with --save-model by this version can be resumed"
                )));
            }
            Some(ckpt)
        }
    };
    let topics: usize = match &resume {
        // Resuming fixes K (and the priors) to the checkpoint's values.
        Some(ckpt) => {
            if let Some(requested) = args.get("topics") {
                let requested: usize = requested
                    .parse()
                    .map_err(|_| CliError::Usage("--topics must be an integer".into()))?;
                if requested != ckpt.num_topics {
                    return Err(CliError::Usage(format!(
                        "--topics {requested} conflicts with the checkpoint's K = {}",
                        ckpt.num_topics
                    )));
                }
            }
            ckpt.num_topics
        }
        None => args.get_parsed_or("topics", 128usize)?,
    };
    let iterations: usize = args.get_parsed_or("iterations", 20usize)?;
    // Resuming continues on the checkpoint's seed (exact continuation); an
    // explicit conflicting --seed is rejected like a conflicting --topics.
    let seed: u64 = match &resume {
        Some(ckpt) => {
            if let Some(requested) = args.get("seed") {
                let requested: u64 = requested
                    .parse()
                    .map_err(|_| CliError::Usage("--seed must be an integer".into()))?;
                if requested != ckpt.seed {
                    return Err(CliError::Usage(format!(
                        "--seed {requested} conflicts with the checkpoint's seed {}",
                        ckpt.seed
                    )));
                }
            }
            ckpt.seed
        }
        None => args.get_parsed_or("seed", 42u64)?,
    };
    let device = device_by_name(&args.get("device").unwrap_or_else(|| "volta".into()))?;
    let save_model = args.get("save-model");
    let optimize_priors = args.flag("optimize-priors");
    let sync_shards = parse_sync_shards(args)?;
    let overlap_depth: usize = args.get_parsed_or("overlap-depth", 2usize)?;
    // Resuming continues on the checkpoint's sampler strategy; an explicit
    // conflicting --sampler is rejected like a conflicting --topics.
    let sampler = match (&resume, parse_sampler(args)?) {
        // A checkpoint always stores the *resolved* strategy, so resuming
        // with `--sampler auto` continues the decision already made — a
        // mid-run re-selection would fork the deterministic trajectory.
        (Some(ckpt), Some(SamplerStrategy::Auto)) => ckpt.sampler,
        (Some(ckpt), Some(requested)) => {
            if requested != ckpt.sampler {
                return Err(CliError::Usage(format!(
                    "--sampler {requested} conflicts with the checkpoint's sampler {}",
                    ckpt.sampler
                )));
            }
            requested
        }
        (Some(ckpt), None) => ckpt.sampler,
        (None, requested) => requested.unwrap_or_default(),
    };
    let (system, system_label) = system_from_args(args, &device, seed)?;
    args.reject_unknown()?;

    let mut config = LdaConfig::with_topics(topics)
        .seed(seed)
        .sync_shards(sync_shards)
        .sync_overlap_depth(overlap_depth)
        .sampler(sampler);
    config
        .validate()
        .map_err(|e| CliError::Usage(format!("invalid configuration: {e}")))?;
    let mut trainer = match &resume {
        None => SessionBuilder::new()
            .corpus(&corpus)
            .config(config)
            .system(system)
            .build()
            .map_err(|e| CliError::Runtime(format!("failed to build trainer: {e}")))?,
        Some(ckpt) => {
            if ckpt.vocab_size != corpus.vocab_size() {
                return Err(CliError::Runtime(format!(
                    "checkpoint vocabulary ({}) does not match the corpus ({})",
                    ckpt.vocab_size,
                    corpus.vocab_size()
                )));
            }
            config.alpha = ckpt.alpha;
            config.beta = ckpt.beta;
            let z = ckpt.z.clone().expect("checked above");
            SessionBuilder::new()
                .corpus(&corpus)
                .config(config)
                .system(system)
                .assignments(z, ckpt.iterations)
                .sampler_state(ckpt.sampler_state.clone())
                .build()
                .map_err(|e| CliError::Runtime(format!("failed to resume trainer: {e}")))?
        }
    };
    trainer.train(iterations);

    let cfg = trainer.config().clone();
    let ll = log_likelihood(
        &trainer.merged_theta(),
        &trainer.global_phi(),
        &trainer.global_nk(),
        cfg.alpha,
        cfg.beta,
    );
    let mut out = String::new();
    writeln!(out, "corpus:       {corpus_name}").unwrap();
    if let Some(path) = &resume_from {
        writeln!(out, "resumed from: {path}").unwrap();
    }
    writeln!(
        out,
        "model:        K = {topics}, α = {:.4}, β = {:.3}",
        cfg.alpha, cfg.beta
    )
    .unwrap();
    writeln!(out, "sampler:      {}", cfg.sampler).unwrap();
    writeln!(out, "system:       {system_label}").unwrap();
    writeln!(out, "schedule:     {:?}", trainer.schedule()).unwrap();
    if trainer.system().num_nodes() > 1 {
        let hier = trainer.hier_sync_plan();
        let n = trainer.history().len().max(1) as u64;
        let intra: u64 = trainer.history().iter().map(|h| h.intra_sync_bytes).sum();
        let inter: u64 = trainer.history().iter().map(|h| h.inter_sync_bytes).sum();
        writeln!(
            out,
            "cluster sync: {} ({} fabric group{}), {:.2} MB intra-node + {:.2} MB fabric per iteration",
            if hier.hierarchical() {
                "hierarchical"
            } else {
                "flat (LDA*-style)"
            },
            hier.inter_groups(),
            if hier.inter_groups() == 1 { "" } else { "s" },
            intra as f64 / n as f64 / 1e6,
            inter as f64 / n as f64 / 1e6,
        )
        .unwrap();
    }
    let plan = trainer.sync_plan();
    if !plan.is_dense() {
        let n = trainer.history().len().max(1) as f64;
        let work: f64 = trainer.history().iter().map(|h| h.sync_time_s).sum::<f64>() / n;
        let exposed: f64 = trainer
            .history()
            .iter()
            .map(|h| h.sync_exposed_time_s)
            .sum::<f64>()
            / n;
        let origin = if trainer.config().sync_shards.is_none() {
            " (auto-tuned from iteration 0)"
        } else {
            ""
        };
        writeln!(
            out,
            "φ sync:       {} shards{origin}, overlap depth {} \
             ({:.3} ms reduce work, {:.3} ms exposed per iteration)",
            plan.shards(),
            plan.overlap_depth(),
            work * 1e3,
            exposed * 1e3
        )
        .unwrap();
    }
    writeln!(out, "iterations:   {iterations}").unwrap();
    writeln!(out, "sim time:     {:.3} s", trainer.sim_time_s()).unwrap();
    writeln!(
        out,
        "throughput:   {:.1} M tokens/s (mean of first {} iterations)",
        trainer.average_throughput(iterations) / 1e6,
        iterations
    )
    .unwrap();
    writeln!(out, "loglik/token: {:.4}", ll.per_token()).unwrap();
    writeln!(out, "kernel breakdown:").unwrap();
    for (name, pct) in trainer.kernel_breakdown() {
        writeln!(out, "  {name:<12} {pct:>6.1}%").unwrap();
    }
    if optimize_priors {
        let alpha = culda_core::optimize_alpha(
            &trainer.merged_theta(),
            cfg.alpha,
            culda_core::HyperOptOptions::default(),
        );
        let beta = culda_core::optimize_beta(
            &trainer.global_phi(),
            &trainer.global_nk(),
            cfg.beta,
            culda_core::HyperOptOptions::default(),
        );
        writeln!(
            out,
            "optimized priors: α = {:.4}, β = {:.4}",
            alpha.value, beta.value
        )
        .unwrap();
    }
    if let Some(path) = save_model {
        let ckpt = ModelCheckpoint::from_trainer(&trainer);
        ckpt.save(&path)
            .map_err(|e| CliError::Runtime(format!("failed to save model to {path}: {e}")))?;
        writeln!(out, "model saved to {path}").unwrap();
    }
    Ok(out)
}

/// `stream` — drive a [`StreamingSession`] from a corpus in mini-batches:
/// ingest a batch of documents, train a few iterations, retire documents
/// that fell out of the sliding window, and rotate checkpoints.
pub fn stream(args: &ParsedArgs) -> Result<String, CliError> {
    let (corpus, corpus_name) = corpus_from_args(args)?;
    let topics: usize = args.get_parsed_or("topics", 64usize)?;
    let seed: u64 = args.get_parsed_or("seed", 42u64)?;
    let device = device_by_name(&args.get("device").unwrap_or_else(|| "volta".into()))?;
    let batch_docs: usize = args.get_parsed_or("batch-docs", 256usize)?;
    let iterations_per_batch: usize = args.get_parsed_or("iterations-per-batch", 2usize)?;
    let window: usize = args.get_parsed_or("window", 0usize)?;
    let burn_in: usize = args.get_parsed_or("burn-in", 1usize)?;
    let checkpoint_dir = args.get("checkpoint-dir");
    let keep_last: usize = args.get_parsed_or("keep-last", 3usize)?;
    let resume = args.flag("resume");
    let sampler = parse_sampler(args)?;
    let (system, system_label) = system_from_args(args, &device, seed)?;
    args.reject_unknown()?;
    if batch_docs == 0 {
        return Err(CliError::Usage("--batch-docs must be positive".into()));
    }
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::Usage(
            "--resume needs --checkpoint-dir to resume from".into(),
        ));
    }

    let mut session = if resume {
        let dir = checkpoint_dir.clone().expect("checked above");
        let opts = culda_core::StreamingOptions {
            burn_in_sweeps: burn_in,
            keep_last: keep_last.max(1),
            ..Default::default()
        };
        let session = StreamingSession::resume_with_options(&dir, system, opts)
            .map_err(|e| CliError::Runtime(format!("failed to resume from {dir}: {e}")))?;
        // Like `train --resume-from`, an explicit --topics/--seed that
        // conflicts with the checkpoint is a usage error, not silently
        // ignored.
        if let Some(requested) = args.get("topics") {
            let requested: usize = requested
                .parse()
                .map_err(|_| CliError::Usage("--topics must be an integer".into()))?;
            if requested != session.config().num_topics {
                return Err(CliError::Usage(format!(
                    "--topics {requested} conflicts with the resumed session's K = {}",
                    session.config().num_topics
                )));
            }
        }
        if let Some(requested) = args.get("seed") {
            let requested: u64 = requested
                .parse()
                .map_err(|_| CliError::Usage("--seed must be an integer".into()))?;
            if requested != session.config().seed {
                return Err(CliError::Usage(format!(
                    "--seed {requested} conflicts with the resumed session's seed {}",
                    session.config().seed
                )));
            }
        }
        // The rotated checkpoint set carries the *resolved* sampler
        // strategy (`auto` accepts whatever was decided); an explicit
        // conflicting --sampler is rejected, like --topics/--seed.
        if let Some(requested) = sampler {
            if requested != SamplerStrategy::Auto && requested != session.config().sampler {
                return Err(CliError::Usage(format!(
                    "--sampler {requested} conflicts with the resumed session's sampler {}",
                    session.config().sampler
                )));
            }
        }
        session
    } else {
        SessionBuilder::new()
            .config(
                LdaConfig::with_topics(topics)
                    .seed(seed)
                    .sampler(sampler.unwrap_or_default()),
            )
            .burn_in_sweeps(burn_in)
            .system(system)
            .build_streaming()
            .map_err(|e| CliError::Runtime(format!("failed to build session: {e}")))?
    };

    let mut out = String::new();
    writeln!(out, "corpus:  {corpus_name}").unwrap();
    writeln!(out, "system:  {system_label}").unwrap();
    writeln!(out, "sampler: {}", session.config().sampler).unwrap();
    if resume {
        let s = session.stats();
        writeln!(
            out,
            "resumed: {} live docs, {} iterations, {} checkpoints already rotated",
            s.live_docs, s.iterations, s.checkpoints_written
        )
        .unwrap();
    }
    writeln!(
        out,
        "streaming {} documents in batches of {batch_docs} \
         ({iterations_per_batch} iterations/batch, window {})",
        corpus.num_docs(),
        if window == 0 {
            "unbounded".to_string()
        } else {
            window.to_string()
        }
    )
    .unwrap();

    let docs: Vec<Document> = (0..corpus.num_docs())
        .map(|d| Document::from(corpus.doc(d)))
        .collect();
    for (batch_idx, batch) in docs.chunks(batch_docs).enumerate() {
        session.ingest(batch);
        // Sliding window: retire the oldest live documents beyond it.
        if window > 0 {
            let live = session.live_uids();
            if live.len() > window {
                let retire: Vec<u64> = live[..live.len() - window].to_vec();
                session
                    .retire(&retire)
                    .map_err(|e| CliError::Runtime(format!("retire failed: {e}")))?;
            }
        }
        session
            .train(iterations_per_batch)
            .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
        if let Some(dir) = &checkpoint_dir {
            session
                .rotate_checkpoints(dir, keep_last)
                .map_err(|e| CliError::Runtime(format!("checkpoint rotation failed: {e}")))?;
        }
        let s = session.stats();
        writeln!(
            out,
            "batch {batch_idx:>3}: {:>6} live docs {:>9} live tokens  \
             tombstones {:>5.1}%  it {:>4}  {:.3}s simulated",
            s.live_docs,
            s.live_tokens,
            s.tombstone_fraction * 100.0,
            s.iterations,
            s.sim_time_s
        )
        .unwrap();
    }

    session
        .validate()
        .map_err(|e| CliError::Runtime(format!("session invariants violated: {e}")))?;
    let s = session.stats();
    writeln!(out, "\nsession totals:").unwrap();
    writeln!(
        out,
        "  ingested {} docs, retired {} docs, {} live ({} tokens, V = {})",
        s.ingested_docs, s.retired_docs, s.live_docs, s.live_tokens, s.vocab_size
    )
    .unwrap();
    writeln!(
        out,
        "  {} iterations in {:.3} simulated seconds, {} checkpoint sets rotated",
        s.iterations, s.sim_time_s, s.checkpoints_written
    )
    .unwrap();
    if s.inter_sync_bytes > 0 {
        writeln!(
            out,
            "  φ sync traffic: {:.2} MB intra-node, {:.2} MB over the fabric",
            s.intra_sync_bytes as f64 / 1e6,
            s.inter_sync_bytes as f64 / 1e6
        )
        .unwrap();
    }
    let occupancy: Vec<String> = s
        .chunk_tokens
        .iter()
        .enumerate()
        .map(|(i, t)| format!("chunk{i}={t}"))
        .collect();
    writeln!(
        out,
        "  chunk occupancy: {} (imbalance {:.2})",
        occupancy.join(" "),
        s.chunk_imbalance()
    )
    .unwrap();
    Ok(out)
}

/// `serve` — the concurrent query tier end to end: stream a corpus into a
/// live model in mini-batches while `--query-threads` reader threads hammer
/// batched fold-in inference against the epoch-published snapshots
/// (`DESIGN.md` §12), then report both sides — training totals and
/// p50/p99 query latency + QPS.
pub fn serve(args: &ParsedArgs) -> Result<String, CliError> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let (corpus, corpus_name) = corpus_from_args(args)?;
    let topics: usize = args.get_parsed_or("topics", 64usize)?;
    let seed: u64 = args.get_parsed_or("seed", 42u64)?;
    let device = device_by_name(&args.get("device").unwrap_or_else(|| "volta".into()))?;
    let batch_docs: usize = args.get_parsed_or("batch-docs", 256usize)?;
    let iterations_per_batch: usize = args.get_parsed_or("iterations-per-batch", 2usize)?;
    let query_threads: usize = args.get_parsed_or("query-threads", 2usize)?;
    let query_batch: usize = args.get_parsed_or("query-batch", 8usize)?;
    let sweeps: usize = args.get_parsed_or("sweeps", 5usize)?;
    let (system, system_label) = system_from_args(args, &device, seed)?;
    args.reject_unknown()?;
    if batch_docs == 0 {
        return Err(CliError::Usage("--batch-docs must be positive".into()));
    }
    if query_threads == 0 || query_batch == 0 {
        return Err(CliError::Usage(
            "--query-threads and --query-batch must be positive".into(),
        ));
    }
    if corpus.num_docs() == 0 {
        return Err(CliError::Runtime("the corpus holds no documents".into()));
    }

    let mut session = SessionBuilder::new()
        .config(LdaConfig::with_topics(topics).seed(seed))
        .system(system)
        .build_streaming()
        .map_err(|e| CliError::Runtime(format!("failed to build session: {e}")))?;

    let docs: Vec<Document> = (0..corpus.num_docs())
        .map(|d| Document::from(corpus.doc(d)))
        .collect();
    // The query workload replays (a slice of) the corpus itself — realistic
    // word statistics without inventing a second corpus format.
    let query_docs: Arc<Vec<Vec<u32>>> = Arc::new(
        docs.iter()
            .take(512)
            .map(|d| d.words.clone())
            .collect::<Vec<_>>(),
    );
    let options = InferenceOptions {
        sweeps,
        burn_in: (sweeps / 4).clamp(usize::from(sweeps > 1), sweeps.saturating_sub(1)),
        seed: 7,
    };

    // Ingest the first batch and publish an initial snapshot so readers can
    // answer queries from the very first moment of the run.
    let mut batches = docs.chunks(batch_docs);
    let first = batches.next().expect("non-empty corpus");
    session
        .try_ingest(first)
        .map_err(|e| CliError::Runtime(format!("ingest failed: {e}")))?;
    session
        .publish_snapshot()
        .map_err(|e| CliError::Runtime(format!("snapshot publication failed: {e}")))?;

    // Reader side: each thread loops batched queries against the snapshot
    // tier until training finishes (and always completes at least one batch,
    // so short runs still serve).
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..query_threads)
        .map(|t| {
            let snapshots = session.snapshots();
            let stop = Arc::clone(&stop);
            let query_docs = Arc::clone(&query_docs);
            std::thread::spawn(move || -> Result<u64, String> {
                let mut served = 0u64;
                let mut cursor = t * query_batch;
                loop {
                    let batch: Vec<Vec<u32>> = (0..query_batch)
                        .map(|i| query_docs[(cursor + i) % query_docs.len()].clone())
                        .collect();
                    cursor = (cursor + query_batch) % query_docs.len();
                    let reply = snapshots
                        .infer_batch(&batch, options)
                        .map_err(|e| e.to_string())?;
                    served += reply.results.len() as u64;
                    if stop.load(Ordering::Relaxed) {
                        return Ok(served);
                    }
                }
            })
        })
        .collect();

    // Writer side: the usual streaming loop; every iteration boundary
    // republishes the snapshot because reader handles are live.
    let train_result = (|| -> Result<(), CliError> {
        session
            .train(iterations_per_batch)
            .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
        for batch in batches {
            session
                .try_ingest(batch)
                .map_err(|e| CliError::Runtime(format!("ingest failed: {e}")))?;
            session
                .train(iterations_per_batch)
                .map_err(|e| CliError::Runtime(format!("training failed: {e}")))?;
        }
        Ok(())
    })();
    stop.store(true, Ordering::Relaxed);
    let mut served_per_thread = Vec::with_capacity(readers.len());
    for reader in readers {
        let served = reader
            .join()
            .map_err(|_| CliError::Runtime("a query thread panicked".into()))?
            .map_err(|e| CliError::Runtime(format!("query failed: {e}")))?;
        served_per_thread.push(served);
    }
    train_result?;
    session
        .validate()
        .map_err(|e| CliError::Runtime(format!("session invariants violated: {e}")))?;

    let s = session.stats();
    let mut out = String::new();
    writeln!(out, "corpus:  {corpus_name}").unwrap();
    writeln!(out, "model:   K = {topics}, seed {seed}, {system_label}").unwrap();
    writeln!(
        out,
        "serving: {query_threads} query threads × batches of {query_batch} \
         ({sweeps} fold-in sweeps per query)"
    )
    .unwrap();
    writeln!(
        out,
        "trained: {} docs ingested, {} iterations, {:.3}s simulated, \
         {} snapshot epochs published",
        s.ingested_docs, s.iterations, s.sim_time_s, s.snapshot_epoch
    )
    .unwrap();
    writeln!(out, "\nquery tier:").unwrap();
    writeln!(
        out,
        "  queries answered: {} ({})",
        s.queries_served,
        served_per_thread
            .iter()
            .enumerate()
            .map(|(t, n)| format!("thread{t}={n}"))
            .collect::<Vec<_>>()
            .join(" ")
    )
    .unwrap();
    writeln!(
        out,
        "  latency: p50 {:.3} ms, p99 {:.3} ms",
        s.query_p50_ms, s.query_p99_ms
    )
    .unwrap();
    writeln!(out, "  throughput: {:.1} queries/s", s.query_qps).unwrap();
    Ok(out)
}

/// `topics` — print the top words of every topic of a saved model.
pub fn topics(args: &ParsedArgs) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let top_n: usize = args.get_parsed_or("top", 10usize)?;
    args.reject_unknown()?;
    let ckpt = ModelCheckpoint::load(&model_path)
        .map_err(|e| CliError::Runtime(format!("failed to load {model_path}: {e}")))?;
    let mut out = String::new();
    writeln!(
        out,
        "model: K = {}, V = {}, {} tokens",
        ckpt.num_topics,
        ckpt.vocab_size,
        ckpt.total_tokens()
    )
    .unwrap();
    for k in 0..ckpt.num_topics {
        let words = culda_metrics::coherence::top_words(&ckpt.phi, k, top_n);
        let rendered: Vec<String> = words
            .iter()
            .map(|&w| format!("word{w}({})", ckpt.phi.get(k, w as usize)))
            .collect();
        writeln!(out, "topic {k:>3}: {}", rendered.join(" ")).unwrap();
    }
    Ok(out)
}

/// `infer` — topic mixture of ad-hoc text (space-separated word ids) or a
/// corpus snapshot.
pub fn infer(args: &ParsedArgs) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let sweeps: usize = args.get_parsed_or("sweeps", 20usize)?;
    let text = args.get("text");
    let corpus_path = args.get("corpus");
    args.reject_unknown()?;
    let ckpt = ModelCheckpoint::load(&model_path)
        .map_err(|e| CliError::Runtime(format!("failed to load {model_path}: {e}")))?;
    // The fallible path: a corrupt checkpoint (NaN weights, non-positive
    // topic totals, shape mismatch) is a runtime error, never a panic.
    let inferencer: TopicInferencer = ckpt
        .try_inferencer()
        .map_err(|e| CliError::Runtime(format!("{model_path} is corrupt: {e}")))?;
    let options = InferenceOptions {
        sweeps,
        burn_in: (sweeps / 4).max(1).min(sweeps - 1),
        seed: 7,
    };
    let mut out = String::new();
    match (text, corpus_path) {
        (Some(text), _) => {
            let words: Vec<u32> = text
                .split_whitespace()
                .filter_map(|t| t.parse().ok())
                .collect();
            if words.is_empty() {
                return Err(CliError::Usage(
                    "--text must contain space-separated word ids".into(),
                ));
            }
            let doc = inferencer
                .try_infer_document(&words, options)
                .map_err(|e| CliError::Runtime(format!("inference failed: {e}")))?;
            writeln!(out, "tokens used: {}", words.len()).unwrap();
            for (k, p) in doc.top_topics(5) {
                writeln!(out, "topic {k:>3}: {:>6.2}%", p * 100.0).unwrap();
            }
        }
        (None, Some(path)) => {
            let corpus = culda_corpus::load_corpus(&path)
                .map_err(|e| CliError::Runtime(format!("failed to load {path}: {e}")))?;
            let results = inferencer
                .try_infer_corpus(&corpus, options)
                .map_err(|e| CliError::Runtime(format!("inference failed: {e}")))?;
            writeln!(out, "{} documents", results.len()).unwrap();
            for (d, doc) in results.iter().enumerate().take(20) {
                let top = doc.top_topics(3);
                let rendered: Vec<String> = top
                    .iter()
                    .map(|&(k, p)| format!("{k}:{:.0}%", p * 100.0))
                    .collect();
                writeln!(out, "doc {d:>5}: {}", rendered.join(" ")).unwrap();
            }
            if results.len() > 20 {
                writeln!(out, "... ({} more documents)", results.len() - 20).unwrap();
            }
        }
        (None, None) => {
            return Err(CliError::Usage(
                "infer needs either --text or --corpus".into(),
            ))
        }
    }
    Ok(out)
}

/// `eval` — held-out perplexity of a saved model on a test corpus under the
/// document-completion protocol.
pub fn eval(args: &ParsedArgs) -> Result<String, CliError> {
    let model_path = args.require("model")?;
    let corpus_path = args.require("corpus")?;
    let heldout_fraction: f64 = args.get_parsed_or("heldout-fraction", 0.5f64)?;
    let sweeps: usize = args.get_parsed_or("sweeps", 20usize)?;
    args.reject_unknown()?;
    if !(0.0..1.0).contains(&heldout_fraction) {
        return Err(CliError::Usage(
            "--heldout-fraction must be in [0, 1)".into(),
        ));
    }
    let ckpt = ModelCheckpoint::load(&model_path)
        .map_err(|e| CliError::Runtime(format!("failed to load {model_path}: {e}")))?;
    let corpus = culda_corpus::load_corpus(&corpus_path)
        .map_err(|e| CliError::Runtime(format!("failed to load {corpus_path}: {e}")))?;
    if corpus.vocab_size() != ckpt.vocab_size {
        return Err(CliError::Runtime(format!(
            "corpus vocabulary ({}) does not match the model ({})",
            corpus.vocab_size(),
            ckpt.vocab_size
        )));
    }
    let split = DocumentCompletion::split(&corpus, heldout_fraction, 11);
    let inferencer = ckpt
        .try_inferencer()
        .map_err(|e| CliError::Runtime(format!("{model_path} is corrupt: {e}")))?;
    let options = InferenceOptions {
        sweeps,
        burn_in: (sweeps / 4).max(1).min(sweeps - 1),
        seed: 13,
    };
    let theta_counts = inferencer
        .try_infer_corpus_counts(&split.observed, options)
        .map_err(|e| CliError::Runtime(format!("inference failed: {e}")))?;
    let score = evaluate_heldout(
        &split.heldout,
        &theta_counts,
        &ckpt.phi,
        &ckpt.nk,
        ckpt.alpha,
        ckpt.beta,
    );
    let mut out = String::new();
    writeln!(out, "test documents:      {}", corpus.num_docs()).unwrap();
    writeln!(out, "held-out tokens:     {}", score.num_tokens).unwrap();
    writeln!(out, "log p per token:     {:.4}", score.per_token()).unwrap();
    writeln!(out, "held-out perplexity: {:.1}", score.perplexity()).unwrap();
    Ok(out)
}

/// Topic-quality report (coherence/diversity) shared by `train --quality` in
/// the examples and the tests; exposed for reuse.
pub fn quality_report(corpus: &Corpus, trainer: &CuLdaTrainer, top_n: usize) -> String {
    let q = topic_quality_report(corpus, &trainer.global_phi(), top_n);
    format!(
        "topic quality: mean UMass coherence {:.2}, mean NPMI {:.2}, diversity {:.2} (top {})",
        q.mean_coherence, q.mean_npmi, q.diversity, q.top_n
    )
}

/// Dispatch a parsed command line to its implementation.
pub fn dispatch(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "platforms" => platforms(args),
        "gen-corpus" => gen_corpus(args),
        "stats" => stats(args),
        "train" => train(args),
        "stream" => stream(args),
        "serve" => serve(args),
        "topics" => topics(args),
        "infer" => infer(args),
        "eval" => eval(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.to_string())
    }
}
