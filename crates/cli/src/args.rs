//! A small, dependency-free command-line parser.
//!
//! The CLI needs only subcommands plus `--key value` / `--flag` options, so a
//! hand-rolled parser keeps the workspace inside the approved offline
//! dependency set (see DESIGN.md §3) while staying fully testable.

use std::collections::BTreeMap;

/// Errors produced while parsing or querying arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// An option was given without a value (`--key` at the end of the line).
    MissingValue(String),
    /// A required option is absent.
    MissingRequired(String),
    /// A value failed to parse into the requested type.
    InvalidValue {
        /// The option name.
        key: String,
        /// The raw value supplied.
        value: String,
        /// What the value was expected to be.
        expected: &'static str,
    },
    /// An option that the command does not understand.
    UnknownOption(String),
    /// A stray positional argument after the subcommand.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `help`)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} is missing a value"),
            ArgError::MissingRequired(k) => write!(f, "required option --{k} is missing"),
            ArgError::InvalidValue {
                key,
                value,
                expected,
            } => write!(f, "--{key} {value}: expected {expected}"),
            ArgError::UnknownOption(k) => write!(f, "unknown option --{k}"),
            ArgError::UnexpectedPositional(p) => write!(f, "unexpected argument `{p}`"),
        }
    }
}

impl std::error::Error for ArgError {}

/// A parsed command line: one subcommand plus `--key value` options and
/// boolean `--flag`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    /// Options the command actually consumed (for unknown-option detection).
    consumed: std::cell::RefCell<Vec<String>>,
}

impl ParsedArgs {
    /// Parse raw arguments (without the program name).
    ///
    /// `--key value` pairs become options, lone `--flag`s become flags, the
    /// first bare word is the subcommand; additional bare words are an error.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut command = None;
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let key = key.to_string();
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let value = iter.next().expect("peeked");
                        options.insert(key, value);
                    }
                    _ => flags.push(key),
                }
            } else if command.is_none() {
                command = Some(arg);
            } else {
                return Err(ArgError::UnexpectedPositional(arg));
            }
        }
        Ok(ParsedArgs {
            command: command.ok_or(ArgError::MissingCommand)?,
            options,
            flags,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn mark(&self, key: &str) {
        self.consumed.borrow_mut().push(key.to_string());
    }

    /// A string option, if present.
    pub fn get(&self, key: &str) -> Option<String> {
        self.mark(key);
        self.options.get(key).cloned()
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<String, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError::MissingRequired(key.to_string()))
    }

    /// A typed option with a default when absent.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgError::InvalidValue {
                key: key.to_string(),
                value: raw,
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A boolean flag (present / absent).
    pub fn flag(&self, key: &str) -> bool {
        self.mark(key);
        self.flags.iter().any(|f| f == key)
    }

    /// After a command has read everything it understands, reject any option
    /// or flag the user passed that was never consumed.
    pub fn reject_unknown(&self) -> Result<(), ArgError> {
        let consumed = self.consumed.borrow();
        for key in self.options.keys().chain(self.flags.iter()) {
            if !consumed.iter().any(|c| c == key) {
                return Err(ArgError::UnknownOption(key.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let a = ParsedArgs::parse(["train", "--topics", "64", "--verbose", "--seed", "7"]).unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("topics"), Some("64".into()));
        assert_eq!(a.get_parsed_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("missing"), None);
    }

    #[test]
    fn defaults_apply_when_options_are_absent() {
        let a = ParsedArgs::parse(["train"]).unwrap();
        assert_eq!(a.get_parsed_or("topics", 128usize).unwrap(), 128);
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()).unwrap_err(),
            ArgError::MissingCommand
        );
    }

    #[test]
    fn stray_positionals_are_rejected() {
        assert!(matches!(
            ParsedArgs::parse(["train", "extra"]),
            Err(ArgError::UnexpectedPositional(p)) if p == "extra"
        ));
    }

    #[test]
    fn required_and_invalid_values() {
        let a = ParsedArgs::parse(["topics", "--top", "abc"]).unwrap();
        assert!(matches!(
            a.require("model"),
            Err(ArgError::MissingRequired(k)) if k == "model"
        ));
        assert!(matches!(
            a.get_parsed_or("top", 10usize),
            Err(ArgError::InvalidValue { .. })
        ));
    }

    #[test]
    fn unknown_options_are_detected_after_consumption() {
        let a = ParsedArgs::parse(["train", "--topics", "8", "--bogus", "1"]).unwrap();
        let _ = a.get("topics");
        assert!(matches!(
            a.reject_unknown(),
            Err(ArgError::UnknownOption(k)) if k == "bogus"
        ));
        let b = ParsedArgs::parse(["train", "--topics", "8"]).unwrap();
        let _ = b.get("topics");
        b.reject_unknown().unwrap();
    }

    #[test]
    fn error_messages_are_readable() {
        let msgs = [
            ArgError::MissingCommand.to_string(),
            ArgError::MissingValue("x".into()).to_string(),
            ArgError::MissingRequired("model".into()).to_string(),
            ArgError::UnknownOption("bogus".into()).to_string(),
        ];
        assert!(msgs.iter().all(|m| !m.is_empty()));
        assert!(msgs[2].contains("model"));
    }
}
