//! # culda-cli
//!
//! Command-line interface for the CuLDA_CGS reproduction.  The binary
//! (`culda-cli`) wraps the workspace crates into the workflows a downstream
//! user actually runs:
//!
//! ```text
//! culda-cli gen-corpus --profile nytimes --tokens 500000 --out nyt.cldc
//! culda-cli train --corpus nyt.cldc --topics 256 --gpus 4 --device volta \
//!                 --iterations 50 --save-model nyt.cldm
//! culda-cli topics --model nyt.cldm --top 12
//! culda-cli eval --model nyt.cldm --corpus nyt_test.cldc
//! ```
//!
//! All argument parsing is hand-rolled ([`args`]) to stay inside the approved
//! offline dependency set, and every command returns its report as a `String`
//! so the full command flows are unit-tested in [`commands`].

#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{ArgError, ParsedArgs};
pub use commands::{dispatch, USAGE};

/// Errors surfaced to the CLI user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line was malformed; print the message plus usage.
    Usage(String),
    /// The command itself failed (IO, bad snapshot, training error...).
    Runtime(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Runtime(msg) => write!(f, "error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Run the CLI on raw arguments (without the program name) and return the
/// report to print.  This is the function `main` calls and the tests drive.
pub fn run<I, S>(raw_args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let parsed = ParsedArgs::parse(raw_args).map_err(|e| CliError::Usage(e.to_string()))?;
    dispatch(&parsed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("culda_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(run(["help"]).unwrap().contains("USAGE"));
        assert!(matches!(run(["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(run(Vec::<String>::new()), Err(CliError::Usage(_))));
    }

    #[test]
    fn platforms_lists_table2_devices() {
        let out = run(["platforms"]).unwrap();
        assert!(out.contains("TITAN X"));
        assert!(out.contains("V100"));
        assert!(out.contains("A100"));
        assert!(out.contains("Xeon"));
    }

    #[test]
    fn gen_corpus_then_stats_roundtrip() {
        let path = tmp_dir().join("cli_nyt.cldc");
        let path_s = path.to_str().unwrap().to_string();
        let out = run([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "20000",
            "--out",
            &path_s,
        ])
        .unwrap();
        assert!(out.contains("wrote"));
        let stats = run(["stats", "--corpus", &path_s]).unwrap();
        assert!(!stats.trim().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn train_topics_infer_eval_pipeline() {
        let dir = tmp_dir();
        let corpus_path = dir.join("cli_pipe.cldc");
        let model_path = dir.join("cli_pipe.cldm");
        let corpus_s = corpus_path.to_str().unwrap().to_string();
        let model_s = model_path.to_str().unwrap().to_string();

        run([
            "gen-corpus",
            "--tokens",
            "15000",
            "--seed",
            "3",
            "--out",
            &corpus_s,
        ])
        .unwrap();

        let report = run([
            "train",
            "--corpus",
            &corpus_s,
            "--topics",
            "16",
            "--iterations",
            "5",
            "--device",
            "volta",
            "--save-model",
            &model_s,
        ])
        .unwrap();
        assert!(report.contains("throughput"));
        assert!(report.contains("loglik/token"));
        assert!(report.contains("model saved"));

        let topics = run(["topics", "--model", &model_s, "--top", "5"]).unwrap();
        assert!(topics.contains("topic   0:"));

        let infer = run(["infer", "--model", &model_s, "--text", "0 1 2 3 4"]).unwrap();
        assert!(infer.contains("topic"));

        let eval = run(["eval", "--model", &model_s, "--corpus", &corpus_s]).unwrap();
        assert!(eval.contains("held-out perplexity"));

        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn train_with_multiple_gpus_and_prior_optimization() {
        let report = run([
            "train",
            "--tokens",
            "12000",
            "--topics",
            "8",
            "--iterations",
            "3",
            "--gpus",
            "2",
            "--device",
            "pascal",
            "--optimize-priors",
        ])
        .unwrap();
        assert!(report.contains("2 × NVIDIA Titan Xp"));
        assert!(report.contains("optimized priors"));
    }

    #[test]
    fn train_with_sharded_sync_reports_the_plan() {
        let report = run([
            "train",
            "--tokens",
            "12000",
            "--topics",
            "8",
            "--iterations",
            "3",
            "--gpus",
            "2",
            "--device",
            "pascal",
            "--sync-shards",
            "4",
            "--overlap-depth",
            "2",
        ])
        .unwrap();
        assert!(report.contains("4 shards, overlap depth 2"), "{report}");
        assert!(report.contains("exposed per iteration"));
        // A zero shard count is a usage error, not a panic.
        assert!(matches!(
            run(["train", "--tokens", "1000", "--sync-shards", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn corrupted_files_surface_runtime_errors() {
        let dir = tmp_dir();
        // A model file holding garbage bytes must be reported, not panic.
        let bad_model = dir.join("cli_bad.cldm");
        std::fs::write(&bad_model, b"CLDMgarbage-that-is-not-a-checkpoint").unwrap();
        let bad_model_s = bad_model.to_str().unwrap().to_string();
        assert!(matches!(
            run(["topics", "--model", &bad_model_s]),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run(["infer", "--model", &bad_model_s, "--text", "1 2 3"]),
            Err(CliError::Runtime(_))
        ));

        // Same for a corpus snapshot that is really a text file.
        let bad_corpus = dir.join("cli_bad.cldc");
        std::fs::write(&bad_corpus, b"this is not a snapshot").unwrap();
        let bad_corpus_s = bad_corpus.to_str().unwrap().to_string();
        assert!(matches!(
            run(["stats", "--corpus", &bad_corpus_s]),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run(["train", "--corpus", &bad_corpus_s, "--iterations", "1"]),
            Err(CliError::Runtime(_))
        ));

        std::fs::remove_file(&bad_model).ok();
        std::fs::remove_file(&bad_corpus).ok();
    }

    #[test]
    fn eval_rejects_vocabulary_mismatch_and_bad_fraction() {
        let dir = tmp_dir();
        let corpus_path = dir.join("cli_mismatch.cldc");
        let other_path = dir.join("cli_mismatch_other.cldc");
        let model_path = dir.join("cli_mismatch.cldm");
        let corpus_s = corpus_path.to_str().unwrap().to_string();
        let other_s = other_path.to_str().unwrap().to_string();
        let model_s = model_path.to_str().unwrap().to_string();

        run([
            "gen-corpus",
            "--tokens",
            "8000",
            "--seed",
            "1",
            "--out",
            &corpus_s,
        ])
        .unwrap();
        // A different profile/size gives a different vocabulary size.
        run([
            "gen-corpus",
            "--profile",
            "pubmed",
            "--tokens",
            "4000",
            "--seed",
            "2",
            "--out",
            &other_s,
        ])
        .unwrap();
        run([
            "train",
            "--corpus",
            &corpus_s,
            "--topics",
            "8",
            "--iterations",
            "2",
            "--save-model",
            &model_s,
        ])
        .unwrap();

        assert!(matches!(
            run(["eval", "--model", &model_s, "--corpus", &other_s]),
            Err(CliError::Runtime(_))
        ));
        assert!(matches!(
            run([
                "eval",
                "--model",
                &model_s,
                "--corpus",
                &corpus_s,
                "--heldout-fraction",
                "1.5"
            ]),
            Err(CliError::Usage(_))
        ));

        std::fs::remove_file(&corpus_path).ok();
        std::fs::remove_file(&other_path).ok();
        std::fs::remove_file(&model_path).ok();
    }

    #[test]
    fn usage_errors_are_reported_not_panicked() {
        assert!(matches!(
            run(["train", "--device", "tpu"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(["train", "--bogus-flag"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(["topics"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run(["infer", "--model", "/nonexistent/model.cldm"]),
            Err(CliError::Runtime(_)) | Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(["gen-corpus", "--profile", "wikipedia", "--out", "/tmp/x"]),
            Err(CliError::Usage(_))
        ));
    }
}
