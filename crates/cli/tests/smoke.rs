//! End-to-end smoke test of the `culda-cli` binary: generate a tiny
//! synthetic corpus, train with a model checkpoint, resume training from
//! that checkpoint, and run inference against the resumed model — all
//! through the real executable via `assert_cmd`.

use assert_cmd::Command;

fn cli() -> Command {
    Command::cargo_bin("culda-cli").expect("culda-cli binary built for tests")
}

#[test]
fn train_checkpoint_resume_infer_round_trip() {
    let dir = std::env::temp_dir().join(format!(
        "culda-cli-smoke-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.cldc");
    let model = dir.join("model.cldm");
    let resumed = dir.join("resumed.cldm");

    // 1. Generate a tiny synthetic corpus snapshot.
    cli()
        .args([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "4000",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .assert()
        .success();
    assert!(corpus.exists(), "gen-corpus must write the snapshot");

    // 2. Train and save a checkpoint.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--iterations",
            "3",
            "--seed",
            "11",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .assert()
        .success()
        .stdout_contains("loglik/token:")
        .stdout_contains("model saved to");
    assert!(model.exists(), "train must write the checkpoint");

    // 3. Resume from the checkpoint and keep training.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--iterations",
            "2",
            "--seed",
            "11",
            "--resume-from",
            model.to_str().unwrap(),
            "--save-model",
            resumed.to_str().unwrap(),
        ])
        .assert()
        .success()
        .stdout_contains("resumed from:")
        .stdout_contains("model saved to");
    assert!(resumed.exists(), "resumed train must write its checkpoint");

    // 4. Infer a topic mixture from the resumed model.
    cli()
        .args([
            "infer",
            "--model",
            resumed.to_str().unwrap(),
            "--text",
            "0 1 2 3 4 5 6 7",
            "--sweeps",
            "8",
        ])
        .assert()
        .success()
        .stdout_contains("topic");

    // 5. Inspect the topics of the resumed model for good measure.
    cli()
        .args(["topics", "--model", resumed.to_str().unwrap(), "--top", "3"])
        .assert()
        .success()
        .stdout_contains("topic");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stream_ingest_retire_rotate_resume_round_trip() {
    let dir = std::env::temp_dir().join(format!(
        "culda-cli-stream-smoke-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.cldc");
    let ckpts = dir.join("checkpoints");

    cli()
        .args([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "4000",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .assert()
        .success();

    // 1. Stream the corpus in mini-batches with a sliding window and
    //    checkpoint rotation: documents get ingested, retired, and the
    //    model is snapshotted after every batch.
    cli()
        .args([
            "stream",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--seed",
            "11",
            "--batch-docs",
            "4",
            "--iterations-per-batch",
            "2",
            "--window",
            "8",
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
            "--keep-last",
            "2",
        ])
        .assert()
        .success()
        .stdout_contains("chunk occupancy:")
        .stdout_contains("retired")
        .stdout_contains("checkpoint sets rotated");
    let sets: Vec<_> = std::fs::read_dir(&ckpts)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "cldm"))
        .collect();
    assert_eq!(sets.len(), 2, "--keep-last 2 must leave two model files");

    // 2. Resume the rotated session and stream more documents into it.
    cli()
        .args([
            "stream",
            "--corpus",
            corpus.to_str().unwrap(),
            "--batch-docs",
            "8",
            "--iterations-per-batch",
            "1",
            "--checkpoint-dir",
            ckpts.to_str().unwrap(),
            "--resume",
        ])
        .assert()
        .success()
        .stdout_contains("resumed:")
        .stdout_contains("session totals:");

    // 3. --resume without a checkpoint dir is a usage error.
    cli()
        .args(["stream", "--tokens", "2000", "--resume"])
        .assert()
        .code(2)
        .stderr_contains("--checkpoint-dir");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alias_sampler_train_checkpoint_resume_round_trip() {
    let dir = std::env::temp_dir().join(format!(
        "culda-cli-alias-smoke-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.cldc");
    let model = dir.join("model.cldm");
    let resumed = dir.join("resumed.cldm");

    cli()
        .args([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "4000",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .assert()
        .success();

    // 1. Train with the alias-hybrid sampler and save a checkpoint.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--iterations",
            "3",
            "--seed",
            "11",
            "--sampler",
            "alias:2",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .assert()
        .success()
        .stdout_contains("sampler:      alias(rebuild_every=2, mh_steps=2)")
        .stdout_contains("Alias build")
        .stdout_contains("model saved to");

    // 2. Resume WITHOUT --sampler: the checkpoint meta must carry the
    //    strategy forward.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--iterations",
            "2",
            "--resume-from",
            model.to_str().unwrap(),
            "--save-model",
            resumed.to_str().unwrap(),
        ])
        .assert()
        .success()
        .stdout_contains("resumed from:")
        .stdout_contains("sampler:      alias(rebuild_every=2, mh_steps=2)");
    assert!(resumed.exists());

    // 3. A conflicting --sampler on resume is a usage error.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--iterations",
            "1",
            "--resume-from",
            model.to_str().unwrap(),
            "--sampler",
            "sparse",
        ])
        .assert()
        .code(2)
        .stderr_contains("conflicts with the checkpoint's sampler");

    // 4. Streaming honours the flag too (burn-in routes through the trait).
    cli()
        .args([
            "stream",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--seed",
            "11",
            "--batch-docs",
            "16",
            "--iterations-per-batch",
            "1",
            "--sampler",
            "alias",
        ])
        .assert()
        .success()
        .stdout_contains("sampler: alias(rebuild_every=8, mh_steps=2)")
        .stdout_contains("session totals:");

    // 5. Malformed sampler specs are usage errors.
    cli()
        .args(["train", "--tokens", "2000", "--sampler", "alias:0"])
        .assert()
        .code(2)
        .stderr_contains("positive integer");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn light_and_auto_samplers_train_and_resume() {
    let dir = std::env::temp_dir().join(format!(
        "culda-cli-light-smoke-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.cldc");
    let model = dir.join("model.cldm");

    cli()
        .args([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "4000",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .assert()
        .success();

    // 1. Train with the LightLDA sampler (custom MH step count) and save.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--iterations",
            "3",
            "--seed",
            "11",
            "--sampler",
            "light:2",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .assert()
        .success()
        .stdout_contains("sampler:      light(rebuild_every=8, mh_steps=2, prune_below=0)")
        .stdout_contains("model saved to");

    // 2. Resuming with `--sampler auto` continues the checkpoint's resolved
    //    strategy instead of re-deciding mid-run.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--iterations",
            "1",
            "--resume-from",
            model.to_str().unwrap(),
            "--sampler",
            "auto",
        ])
        .assert()
        .success()
        .stdout_contains("resumed from:")
        .stdout_contains("sampler:      light(rebuild_every=8, mh_steps=2, prune_below=0)");

    // 3. A fresh `--sampler auto` run resolves to a concrete strategy before
    //    training (this small short-doc corpus scores sparse-CGS fastest).
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--iterations",
            "1",
            "--seed",
            "11",
            "--sampler",
            "auto",
        ])
        .assert()
        .success()
        .stdout_contains("sampler:      sparse-cgs");

    // 4. Malformed light specs are usage errors, as for alias.
    cli()
        .args(["train", "--tokens", "2000", "--sampler", "light:0"])
        .assert()
        .code(2)
        .stderr_contains("positive integer");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_streams_and_answers_queries_concurrently() {
    // The whole query tier through the real binary: stream a corpus while
    // reader threads answer batched fold-in queries against the
    // epoch-published snapshots, and report latency/QPS at the end.
    cli()
        .args([
            "serve",
            "--tokens",
            "4000",
            "--topics",
            "8",
            "--seed",
            "11",
            "--batch-docs",
            "4",
            "--iterations-per-batch",
            "1",
            "--query-threads",
            "2",
            "--query-batch",
            "4",
            "--sweeps",
            "3",
        ])
        .assert()
        .success()
        .stdout_contains("snapshot epochs published")
        .stdout_contains("queries answered:")
        .stdout_contains("latency: p50")
        .stdout_contains("queries/s");

    // Zero reader threads make no sense and are a usage error.
    cli()
        .args(["serve", "--tokens", "2000", "--query-threads", "0"])
        .assert()
        .code(2)
        .stderr_contains("--query-threads");
}

#[test]
fn resume_rejects_mismatched_topics() {
    let dir = std::env::temp_dir().join(format!("culda-cli-smoke-k-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.cldc");
    let model = dir.join("model.cldm");

    cli()
        .args([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "2000",
            "--seed",
            "5",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .assert()
        .success();
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "4",
            "--iterations",
            "1",
            "--save-model",
            model.to_str().unwrap(),
        ])
        .assert()
        .success();

    // K conflicting with the checkpoint is a usage error (exit code 2).
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "16",
            "--iterations",
            "1",
            "--resume-from",
            model.to_str().unwrap(),
        ])
        .assert()
        .code(2)
        .stderr_contains("conflicts with the checkpoint");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cluster_train_matches_the_flat_gpu_count_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!(
        "culda-cli-cluster-smoke-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = dir.join("corpus.cldc");
    let flat = dir.join("flat.cldm");
    let cluster = dir.join("cluster.cldm");

    cli()
        .args([
            "gen-corpus",
            "--profile",
            "nytimes",
            "--tokens",
            "4000",
            "--seed",
            "11",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .assert()
        .success();

    // 1. Four single-node GPUs.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--iterations",
            "2",
            "--seed",
            "11",
            "--gpus",
            "4",
            "--save-model",
            flat.to_str().unwrap(),
        ])
        .assert()
        .success();

    // 2. The same four devices as a 2 × 2 cluster over 10 GbE: the run
    //    reports the hierarchical sync and its per-tier traffic, and the
    //    saved model must be byte-identical — node grouping is costing only.
    cli()
        .args([
            "train",
            "--corpus",
            corpus.to_str().unwrap(),
            "--topics",
            "8",
            "--iterations",
            "2",
            "--seed",
            "11",
            "--gpus",
            "2",
            "--nodes",
            "2",
            "--inter-link",
            "ethernet",
            "--save-model",
            cluster.to_str().unwrap(),
        ])
        .assert()
        .success()
        .stdout_contains("2 nodes × 2 ×")
        .stdout_contains("cluster sync: hierarchical");
    let a = std::fs::read(&flat).unwrap();
    let b = std::fs::read(&cluster).unwrap();
    assert_eq!(a, b, "cluster grouping must not change the trained model");

    // 3. --inter-link without a cluster is a usage error.
    cli()
        .args(["train", "--tokens", "2000", "--inter-link", "ethernet"])
        .assert()
        .code(2)
        .stderr_contains("--nodes");

    // 4. An unknown fabric is a usage error.
    cli()
        .args([
            "train",
            "--tokens",
            "2000",
            "--nodes",
            "2",
            "--inter-link",
            "carrier-pigeon",
        ])
        .assert()
        .code(2)
        .stderr_contains("expected");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn help_and_bad_usage_exit_codes() {
    cli()
        .args(["help"])
        .assert()
        .success()
        .stdout_contains("USAGE");
    cli().args(["no-such-command"]).assert().code(2);
    cli()
        .args(["infer", "--model", "/nonexistent/model.cldm", "--text", "1"])
        .assert()
        .code(1);
}
