//! Property-based tests for the sparse-matrix and sampling primitives.

use culda_sparse::{AliasTable, CsrMatrix, IndexTree};
use proptest::prelude::*;

fn arb_dense_rows() -> impl Strategy<Value = (usize, Vec<Vec<u32>>)> {
    (1usize..24).prop_flat_map(|cols| {
        (
            Just(cols),
            prop::collection::vec(prop::collection::vec(0u32..6, cols), 0..24),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 96,
        failure_persistence: FileFailurePersistence::WithSource("proptest-regressions"),
        ..ProptestConfig::default()
    })]
    /// CSR ⇄ dense round trips exactly.
    #[test]
    fn csr_dense_round_trip((cols, rows) in arb_dense_rows()) {
        let m = CsrMatrix::from_dense_rows(cols, &rows);
        prop_assert!(m.validate().is_ok());
        prop_assert_eq!(m.to_dense(), rows);
    }

    /// nnz equals the number of non-zero entries, and total equals the sum.
    #[test]
    fn csr_nnz_and_total((cols, rows) in arb_dense_rows()) {
        let m = CsrMatrix::from_dense_rows(cols, &rows);
        let nnz: usize = rows.iter().map(|r| r.iter().filter(|&&v| v != 0).count()).sum();
        let total: u64 = rows.iter().flatten().map(|&v| v as u64).sum();
        prop_assert_eq!(m.nnz(), nnz);
        prop_assert_eq!(m.total(), total);
    }

    /// `get` agrees with the dense representation for every coordinate.
    #[test]
    fn csr_get_matches_dense((cols, rows) in arb_dense_rows()) {
        let m = CsrMatrix::from_dense_rows(cols, &rows);
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                prop_assert_eq!(m.get(r, c), v);
            }
        }
    }

    /// Tree-based sampling selects exactly the bucket a linear scan over the
    /// prefix sums would select, for any fan-out and any weights.
    #[test]
    fn index_tree_matches_linear_search(
        weights in prop::collection::vec(0.0f32..10.0, 1..300),
        fanout in 2usize..40,
        fraction in 0.0f64..1.0,
    ) {
        let tree = IndexTree::with_fanout(fanout, &weights);
        let total = tree.total();
        prop_assume!(total > 0.0);
        let u = (fraction as f32 * total).min(total * 0.999_999);
        let prefix = tree.leaf_prefix().to_vec();
        let linear = culda_sparse::prefix::search_prefix(&prefix, u);
        prop_assert_eq!(tree.sample(u), linear);
    }

    /// The index-tree total equals the weight sum regardless of fan-out.
    #[test]
    fn index_tree_total_is_weight_sum(
        weights in prop::collection::vec(0.0f32..5.0, 1..200),
        fanout in 2usize..34,
    ) {
        let tree = IndexTree::with_fanout(fanout, &weights);
        let expect: f32 = weights.iter().sum();
        prop_assert!((tree.total() - expect).abs() <= expect.abs() * 1e-5 + 1e-5);
    }

    /// Alias tables never return an out-of-range bucket and never return a
    /// zero-weight bucket when at least one weight is positive.
    #[test]
    fn alias_table_respects_support(
        weights in prop::collection::vec(0.0f32..4.0, 1..64),
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let table = AliasTable::new(&weights);
        let positive: f32 = weights.iter().sum();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..64 {
            let k = table.sample(&mut rng);
            prop_assert!(k < weights.len());
            if positive > 0.0 {
                // Zero-weight buckets may appear only through float rounding in
                // the build; with the exact arithmetic used here they cannot.
                prop_assert!(weights[k] > 0.0, "drew zero-weight bucket {}", k);
            }
        }
    }

    /// Exclusive scan: out[i] is the sum of all preceding inputs.
    #[test]
    fn exclusive_scan_is_prefix_sum(values in prop::collection::vec(0u32..100, 0..200)) {
        let mut scanned = values.clone();
        let total = culda_sparse::prefix::exclusive_scan_u32(&mut scanned);
        let mut acc = 0u32;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(scanned[i], acc);
            acc += v;
        }
        prop_assert_eq!(total, acc);
    }

    /// Parallel offsets agree with the sequential definition.
    #[test]
    fn parallel_offsets_match_sequential(values in prop::collection::vec(0u64..1000, 0..500)) {
        let offsets = culda_sparse::prefix::parallel_offsets_u64(&values);
        prop_assert_eq!(offsets.len(), values.len() + 1);
        let mut acc = 0u64;
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(offsets[i], acc);
            acc += v;
        }
        prop_assert_eq!(*offsets.last().unwrap(), acc);
    }

    /// 16-bit compression round trips whenever every value fits.
    #[test]
    fn compression_round_trip(values in prop::collection::vec(0u32..65536, 0..200)) {
        let c = culda_sparse::compress_u16(&values).unwrap();
        prop_assert_eq!(culda_sparse::compress::decompress_u32(&c), values);
    }

    /// LEB128 round trips for arbitrary u32 slices, and the size-only
    /// accounting matches the materialised byte stream.
    #[test]
    fn varint_slice_round_trip(values in prop::collection::vec(any::<u32>(), 0..300)) {
        use culda_sparse::varint;
        let bytes = varint::encode_slice(&values);
        prop_assert_eq!(bytes.len(), varint::encoded_len(&values));
        prop_assert_eq!(varint::decode_slice(&bytes, values.len()).unwrap(), values);
    }

    /// Delta + LEB128 round trips for any non-decreasing sequence, and the
    /// encoding never exceeds the plain varint encoding of the same values.
    #[test]
    fn varint_delta_round_trip(mut values in prop::collection::vec(any::<u32>(), 0..300)) {
        use culda_sparse::varint;
        values.sort_unstable();
        let bytes = varint::encode_deltas(&values);
        prop_assert_eq!(bytes.len(), varint::delta_encoded_len(&values));
        prop_assert_eq!(varint::decode_deltas(&bytes, values.len()).unwrap(), values.clone());
        prop_assert!(bytes.len() <= varint::encoded_len(&values));
        let stats = varint::delta_stats(&values);
        prop_assert!(stats.ratio() > 0.0);
        if !values.is_empty() {
            // LEB128 of a u32 never exceeds 5 bytes → ratio bounded by 1.25.
            prop_assert!(stats.ratio() <= 1.25 + 1e-9);
        }
    }

    /// Decoding never panics on arbitrary byte soup — it either succeeds or
    /// reports a structured error.
    #[test]
    fn varint_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64), count in 0usize..16) {
        use culda_sparse::varint;
        let _ = varint::decode_slice(&bytes, count);
        let _ = varint::decode_deltas(&bytes, count);
    }
}
