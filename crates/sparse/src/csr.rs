//! Compressed sparse row (CSR) storage for the document–topic matrix θ.
//!
//! The paper stores θ in CSR format with 16-bit column (topic) indices
//! (§6.1.3).  A row corresponds to one document; the non-zero entries of the
//! row are the topics that currently have at least one token assigned in that
//! document, together with their counts.  Because the average document is far
//! shorter than the number of topics `K`, θ is very sparse, which is exactly
//! the property the sparsity-aware sampler (§6.1.1) exploits.

use crate::topic::TopicId;
use serde::{Deserialize, Serialize};

/// A CSR matrix with `u16` column indices and `u32` values.
///
/// Invariants (checked by [`CsrMatrix::validate`] and exercised by the
/// property tests):
///
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`, `row_ptr` is
///   non-decreasing and `row_ptr[rows] == cols_idx.len() == values.len()`.
/// * within each row, column indices are strictly increasing and < `cols`.
/// * all stored values are non-zero (zero entries are simply absent).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<TopicId>,
    values: Vec<u32>,
}

impl CsrMatrix {
    /// An empty matrix with the given shape and no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build a CSR matrix from per-row `(column, value)` pairs.
    ///
    /// Each row's pairs may be unsorted and may contain duplicate columns;
    /// duplicates are summed.  Zero values are dropped.
    pub fn from_rows(cols: usize, rows: &[Vec<(TopicId, u32)>]) -> Self {
        let mut builder = CsrBuilder::new(rows.len(), cols);
        for row in rows {
            builder.push_row(row.iter().copied());
        }
        builder.finish()
    }

    /// Build a CSR matrix from dense rows; zero entries are dropped.
    pub fn from_dense_rows(cols: usize, dense: &[Vec<u32>]) -> Self {
        let mut builder = CsrBuilder::new(dense.len(), cols);
        for row in dense {
            assert_eq!(row.len(), cols, "dense row length must equal `cols`");
            builder.push_row(
                row.iter()
                    .enumerate()
                    .filter(|(_, &v)| v != 0)
                    .map(|(k, &v)| (k as TopicId, v)),
            );
        }
        builder.finish()
    }

    /// Number of rows (documents).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (topics).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of stored entries in row `r` (the paper's `K_d`).
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// The column indices and values of row `r`, as parallel slices.
    #[inline]
    pub fn row(&self, r: usize) -> (&[TopicId], &[u32]) {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The raw row pointer array (`rows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Value at `(r, c)`, or 0 when the entry is not stored.
    pub fn get(&self, r: usize, c: usize) -> u32 {
        let (cols, vals) = self.row(r);
        match cols.binary_search(&(c as TopicId)) {
            Ok(i) => vals[i],
            Err(_) => 0,
        }
    }

    /// Expand row `r` into a dense vector of length `cols`.
    pub fn dense_row(&self, r: usize) -> Vec<u32> {
        let mut out = vec![0u32; self.cols];
        let (cols, vals) = self.row(r);
        for (&c, &v) in cols.iter().zip(vals) {
            out[c as usize] = v;
        }
        out
    }

    /// Sum of the values in row `r` (for θ this is the document length).
    pub fn row_sum(&self, r: usize) -> u64 {
        let (_, vals) = self.row(r);
        vals.iter().map(|&v| v as u64).sum()
    }

    /// Sum of all stored values.
    pub fn total(&self) -> u64 {
        self.values.iter().map(|&v| v as u64).sum()
    }

    /// Iterate over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, TopicId, u32)> + '_ {
        (0..self.rows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter().zip(vals).map(move |(&c, &v)| (r, c, v))
        })
    }

    /// Size in bytes of the device-resident representation
    /// (`row_ptr` as u32, column indices as u16, values as u32).
    ///
    /// Used by the PCIe transfer model and the device-memory capacity check.
    pub fn device_bytes(&self) -> u64 {
        (self.row_ptr.len() * 4 + self.col_idx.len() * 2 + self.values.len() * 4) as u64
    }

    /// Check all structural invariants; returns a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(format!(
                "row_ptr length {} != rows + 1 = {}",
                self.row_ptr.len(),
                self.rows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() as usize != self.col_idx.len()
            || self.col_idx.len() != self.values.len()
        {
            return Err("row_ptr end / col_idx / values length mismatch".into());
        }
        for r in 0..self.rows {
            if self.row_ptr[r] > self.row_ptr[r + 1] {
                return Err(format!("row_ptr decreases at row {r}"));
            }
            let (cols, vals) = self.row(r);
            for w in cols.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {r} columns not strictly increasing"));
                }
            }
            if let Some(&c) = cols.last() {
                if c as usize >= self.cols {
                    return Err(format!("row {r} column {c} out of bounds"));
                }
            }
            if vals.contains(&0) {
                return Err(format!("row {r} stores an explicit zero"));
            }
        }
        Ok(())
    }

    /// Convert to a dense row-major matrix (mainly for tests and debugging).
    pub fn to_dense(&self) -> Vec<Vec<u32>> {
        (0..self.rows).map(|r| self.dense_row(r)).collect()
    }
}

/// Incremental builder for [`CsrMatrix`], pushing one row at a time.
///
/// This mirrors the way the update-θ kernel (§6.2) regenerates θ after each
/// iteration: a dense per-document scratch array is compacted into a CSR row
/// using a prefix sum over the per-row non-zero counts.
#[derive(Debug)]
pub struct CsrBuilder {
    cols: usize,
    expected_rows: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<TopicId>,
    values: Vec<u32>,
    scratch: Vec<(TopicId, u32)>,
}

impl CsrBuilder {
    /// Start building a matrix with `rows` rows and `cols` columns.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(
            cols <= TopicId::MAX as usize + 1,
            "column index must fit in u16"
        );
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        CsrBuilder {
            cols,
            expected_rows: rows,
            row_ptr,
            col_idx: Vec::new(),
            values: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Reserve space for an estimated total number of non-zeros.
    pub fn reserve_nnz(&mut self, nnz: usize) {
        self.col_idx.reserve(nnz);
        self.values.reserve(nnz);
    }

    /// Append the next row from `(column, value)` pairs.
    ///
    /// Pairs may be unsorted and contain duplicates (summed); zeros dropped.
    pub fn push_row(&mut self, entries: impl IntoIterator<Item = (TopicId, u32)>) {
        self.scratch.clear();
        self.scratch.extend(entries);
        self.scratch.sort_unstable_by_key(|&(c, _)| c);
        let mut i = 0;
        while i < self.scratch.len() {
            let (c, mut v) = self.scratch[i];
            let mut j = i + 1;
            while j < self.scratch.len() && self.scratch[j].0 == c {
                v += self.scratch[j].1;
                j += 1;
            }
            debug_assert!((c as usize) < self.cols, "column {c} out of bounds");
            if v != 0 {
                self.col_idx.push(c);
                self.values.push(v);
            }
            i = j;
        }
        self.row_ptr.push(self.col_idx.len() as u32);
    }

    /// Append the next row from a dense slice of length `cols`.
    pub fn push_dense_row(&mut self, dense: &[u32]) {
        debug_assert_eq!(dense.len(), self.cols);
        for (k, &v) in dense.iter().enumerate() {
            if v != 0 {
                self.col_idx.push(k as TopicId);
                self.values.push(v);
            }
        }
        self.row_ptr.push(self.col_idx.len() as u32);
    }

    /// Number of rows pushed so far.
    pub fn rows_pushed(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Finish building.  Missing rows (fewer `push_row` calls than `rows`)
    /// are treated as empty.
    pub fn finish(mut self) -> CsrMatrix {
        while self.rows_pushed() < self.expected_rows {
            let nnz = self.col_idx.len() as u32;
            self.row_ptr.push(nnz);
        }
        let m = CsrMatrix {
            rows: self.expected_rows,
            cols: self.cols,
            row_ptr: self.row_ptr,
            col_idx: self.col_idx,
            values: self.values,
        };
        debug_assert!(m.validate().is_ok(), "builder produced invalid CSR");
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_rows(
            8,
            &[
                vec![(1, 3), (4, 1)],
                vec![],
                vec![(0, 2), (7, 5), (3, 1)],
                vec![(6, 1)],
            ],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 8);
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row_nnz(2), 3);
        m.validate().unwrap();
    }

    #[test]
    fn get_returns_stored_and_zero() {
        let m = sample();
        assert_eq!(m.get(0, 1), 3);
        assert_eq!(m.get(0, 2), 0);
        assert_eq!(m.get(2, 7), 5);
        assert_eq!(m.get(1, 0), 0);
    }

    #[test]
    fn rows_are_sorted_even_if_input_is_not() {
        let m = CsrMatrix::from_rows(10, &[vec![(9, 1), (2, 2), (5, 3)]]);
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[2, 5, 9]);
        assert_eq!(vals, &[2, 3, 1]);
    }

    #[test]
    fn duplicate_columns_are_summed_and_zeros_dropped() {
        let m = CsrMatrix::from_rows(4, &[vec![(1, 2), (1, 3), (2, 0)]]);
        assert_eq!(m.row(0), (&[1u16][..], &[5u32][..]));
        m.validate().unwrap();
    }

    #[test]
    fn dense_round_trip() {
        let dense = vec![vec![0, 2, 0, 1], vec![5, 0, 0, 0], vec![0, 0, 0, 0]];
        let m = CsrMatrix::from_dense_rows(4, &dense);
        assert_eq!(m.to_dense(), dense);
    }

    #[test]
    fn row_sum_and_total() {
        let m = sample();
        assert_eq!(m.row_sum(0), 4);
        assert_eq!(m.row_sum(1), 0);
        assert_eq!(m.total(), 13);
    }

    #[test]
    fn iter_visits_all_entries_in_order() {
        let m = sample();
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples[0], (0, 1, 3));
        assert_eq!(triples.len(), 6);
        assert!(triples.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn builder_fills_missing_rows() {
        let mut b = CsrBuilder::new(5, 4);
        b.push_row([(0u16, 1u32)]);
        let m = b.finish();
        assert_eq!(m.rows(), 5);
        assert_eq!(m.row_nnz(4), 0);
        m.validate().unwrap();
    }

    #[test]
    fn push_dense_row_matches_push_row() {
        let mut a = CsrBuilder::new(1, 6);
        a.push_dense_row(&[0, 3, 0, 0, 7, 0]);
        let mut b = CsrBuilder::new(1, 6);
        b.push_row([(1u16, 3u32), (4, 7)]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn device_bytes_accounts_for_compression() {
        let m = sample();
        // row_ptr: 5 * 4, cols: 6 * 2, vals: 6 * 4
        assert_eq!(m.device_bytes(), 20 + 12 + 24);
    }

    #[test]
    fn zeros_matrix_is_valid() {
        let m = CsrMatrix::zeros(3, 9);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.get(2, 8), 0);
    }
}
