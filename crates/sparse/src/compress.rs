//! Precision compression (§6.1.3).
//!
//! Because `K < 2^16` and per-word per-topic counts stay far below 2^16 in
//! practice, CuLDA_CGS stores CSR column indices and φ entries as 16-bit
//! integers, halving the memory traffic of the most bandwidth-hungry
//! structures.  These helpers perform the (checked) narrowing conversions and
//! compute the byte savings, which the transfer and kernel cost models use.

use serde::{Deserialize, Serialize};

/// Error returned when a value does not fit in the compressed representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionError {
    /// The value that failed to compress.
    pub value: u32,
    /// Index of the offending element in the input slice.
    pub index: usize,
}

impl std::fmt::Display for CompressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value {} at index {} does not fit in 16 bits",
            self.value, self.index
        )
    }
}

impl std::error::Error for CompressionError {}

/// Compress a slice of `u32` into `u16`, failing on the first overflow.
pub fn compress_u16(values: &[u32]) -> Result<Vec<u16>, CompressionError> {
    values
        .iter()
        .enumerate()
        .map(|(index, &value)| u16::try_from(value).map_err(|_| CompressionError { value, index }))
        .collect()
}

/// Widen a slice of `u16` back to `u32` (always succeeds).
pub fn decompress_u32(values: &[u16]) -> Vec<u32> {
    values.iter().map(|&v| v as u32).collect()
}

/// Compress with saturation instead of failure.
///
/// The paper argues 16 bits are "accurate enough" for φ; on the synthetic
/// scaled corpora overflow cannot happen, but the saturating variant is what a
/// production deployment on a billion-token corpus would use for φ entries
/// while keeping exact 32-bit topic totals on the side.
pub fn compress_u16_saturating(values: &[u32]) -> Vec<u16> {
    values
        .iter()
        .map(|&v| v.min(u16::MAX as u32) as u16)
        .collect()
}

/// Fraction of bytes saved by 16-bit compression of `n` elements relative to
/// the 32-bit representation (always 0.5, exposed for reporting).
pub fn savings_ratio() -> f64 {
    0.5
}

/// Bytes occupied by `n` compressed (u16) elements.
pub fn compressed_bytes(n: usize) -> u64 {
    (n * 2) as u64
}

/// Bytes occupied by `n` uncompressed (u32) elements.
pub fn uncompressed_bytes(n: usize) -> u64 {
    (n * 4) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_values() {
        let v = vec![0u32, 1, 65535, 42, 1000];
        let c = compress_u16(&v).unwrap();
        assert_eq!(decompress_u32(&c), v);
    }

    #[test]
    fn overflow_is_reported_with_index() {
        let v = vec![1u32, 2, 70_000, 3];
        let err = compress_u16(&v).unwrap_err();
        assert_eq!(err.index, 2);
        assert_eq!(err.value, 70_000);
        assert!(err.to_string().contains("70000"));
    }

    #[test]
    fn saturating_clamps_instead_of_failing() {
        let v = vec![1u32, 70_000];
        assert_eq!(compress_u16_saturating(&v), vec![1, 65535]);
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(compressed_bytes(10), 20);
        assert_eq!(uncompressed_bytes(10), 40);
        assert_eq!(savings_ratio(), 0.5);
    }
}
