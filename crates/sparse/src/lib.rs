//! # culda-sparse
//!
//! Sparse and dense matrix primitives used throughout the CuLDA_CGS
//! reproduction, together with the sampling data structures the paper's GPU
//! kernels rely on:
//!
//! * [`csr::CsrMatrix`] — compressed sparse row storage for the
//!   document–topic matrix θ (16-bit column indices, §6.1.3 of the paper).
//! * [`dense::DenseMatrix`] / [`dense::AtomicMatrix`] — dense storage for the
//!   topic–word matrix φ, with an atomic variant used by the update-φ kernel.
//! * [`prefix`] — sequential and parallel prefix sums (used when compacting a
//!   dense document row back into CSR, §6.2).
//! * [`index_tree::IndexTree`] — the N-ary (32-way on NVIDIA GPUs) index tree
//!   over prefix sums used for tree-based multinomial sampling (§6.1.1,
//!   Figure 5).
//! * [`alias::AliasTable`] / [`alias::StaleAliasProposal`] — Vose alias
//!   tables and the stale per-word proposal bundle shared by the
//!   Metropolis–Hastings baselines (WarpLDA, AliasLDA) and `culda-core`'s
//!   alias-hybrid sampler kernel.
//! * [`compress`] — 16-bit precision-compression helpers (§6.1.3).
//! * [`varint`] — LEB128 + delta codecs for the chunk streams that cross the
//!   PCIe bus under the streamed schedule (§6.1.3's data-size compression).
//!
//! The crate is deliberately free of any LDA- or GPU-specific logic so that it
//! can be tested exhaustively in isolation (see the property tests under
//! `tests/`).

#![warn(missing_docs)]

pub mod alias;
pub mod compress;
pub mod csr;
pub mod dense;
pub mod index_tree;
pub mod prefix;
pub mod topic;
pub mod varint;

pub use alias::{AliasTable, StaleAliasProposal};
pub use compress::{compress_u16, CompressionError};
pub use csr::{CsrBuilder, CsrMatrix};
pub use dense::{AtomicMatrix, DenseMatrix};
pub use index_tree::IndexTree;
pub use topic::{Topic, TopicId};
