//! Topic identifiers.
//!
//! CuLDA_CGS stores topic indices as 16-bit integers ("precision
//! compression", §6.1.3): the paper observes that practical topic counts K
//! never exceed 2^16, so CSR column indices and φ entries can be halved in
//! size, which matters for a memory-bound workload.

use serde::{Deserialize, Serialize};

/// The integer type used to store a topic index on the device.
///
/// The paper uses `short int` (16 bits) because `K < 2^16` in all evaluated
/// configurations.
pub type TopicId = u16;

/// A strongly typed topic index.
///
/// `Topic` is a thin newtype over [`TopicId`]; it exists so that document,
/// word and topic indices cannot be accidentally swapped in kernel code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Topic(pub TopicId);

impl Topic {
    /// Largest representable topic index.
    pub const MAX: Topic = Topic(TopicId::MAX);

    /// Create a topic from a `usize`, panicking if it does not fit in 16 bits.
    ///
    /// # Panics
    /// Panics if `k >= 65536`. The trainer validates `K` up front, so this is
    /// an internal invariant rather than a user-facing error path.
    #[inline]
    pub fn new(k: usize) -> Self {
        debug_assert!(k <= TopicId::MAX as usize, "topic index {k} exceeds u16");
        Topic(k as TopicId)
    }

    /// Checked constructor: returns `None` when the index does not fit in the
    /// compressed 16-bit representation.
    #[inline]
    pub fn try_new(k: usize) -> Option<Self> {
        if k <= TopicId::MAX as usize {
            Some(Topic(k as TopicId))
        } else {
            None
        }
    }

    /// The topic index as a `usize`, suitable for indexing host-side arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<Topic> for usize {
    #[inline]
    fn from(t: Topic) -> usize {
        t.index()
    }
}

impl std::fmt::Display for Topic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "topic{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_index_round_trip() {
        for k in [0usize, 1, 17, 1023, 65535] {
            assert_eq!(Topic::new(k).index(), k);
        }
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert_eq!(Topic::try_new(65535), Some(Topic(65535)));
        assert_eq!(Topic::try_new(65536), None);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(Topic::new(3) < Topic::new(4));
        assert!(Topic::new(1000) > Topic::new(999));
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Topic::new(7).to_string(), "topic7");
    }

    #[test]
    fn topic_is_two_bytes() {
        assert_eq!(std::mem::size_of::<Topic>(), 2);
    }
}
