//! Variable-length integer (LEB128) and delta codecs for corpus chunks.
//!
//! §6.1.3 of the paper compresses the data that crosses the PCIe bus under
//! the streamed schedule (`WorkSchedule2`): besides the 16-bit narrowing in
//! [`crate::compress`], the token stream itself is highly compressible once
//! it is laid out word-major — the word ids form a non-decreasing sequence
//! whose deltas are almost always zero, and CSR row pointers are strictly
//! increasing.  This module provides the byte-oriented codecs used to model
//! (and test) that compression:
//!
//! * [`encode_u32`] / [`decode_u32`] — unsigned LEB128 for a single value;
//! * [`encode_slice`] / [`decode_slice`] — LEB128 over a slice;
//! * [`encode_deltas`] / [`decode_deltas`] — delta + LEB128 over a
//!   non-decreasing sequence (word-major word ids, CSR `row_ptr`);
//! * [`encoded_len`] / [`delta_encoded_len`] — size-only accounting used by
//!   the transfer cost model without materialising the byte stream.

/// Maximum number of bytes a LEB128-encoded `u32` can occupy.
pub const MAX_VARINT_BYTES: usize = 5;

/// Error returned when decoding malformed varint data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended in the middle of a value.
    Truncated,
    /// A value did not terminate within [`MAX_VARINT_BYTES`] bytes.
    Overlong,
    /// A delta-decoded sequence would overflow `u32`.
    Overflow,
}

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint input ended mid-value"),
            VarintError::Overlong => write!(f, "varint longer than 5 bytes"),
            VarintError::Overflow => write!(f, "delta sequence overflows u32"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Append the LEB128 encoding of `value` to `out`.
pub fn encode_u32(mut value: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 value from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
pub fn decode_u32(input: &[u8]) -> Result<(u32, usize), VarintError> {
    let mut value: u32 = 0;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_VARINT_BYTES {
            return Err(VarintError::Overlong);
        }
        let payload = (byte & 0x7f) as u32;
        // The fifth byte may only carry the top 4 bits of a u32.
        if i == MAX_VARINT_BYTES - 1 && payload > 0x0f {
            return Err(VarintError::Overlong);
        }
        value |= payload << (7 * i);
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    Err(VarintError::Truncated)
}

/// Number of bytes [`encode_u32`] produces for `value`.
pub fn encoded_len_u32(value: u32) -> usize {
    match value {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// LEB128-encode every element of `values`.
pub fn encode_slice(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    for &v in values {
        encode_u32(v, &mut out);
    }
    out
}

/// Decode exactly `count` LEB128 values from `input`.
///
/// Trailing bytes after the last value are an error ([`VarintError::Truncated`]
/// is returned for missing data; extra data is reported as `Overlong`).
pub fn decode_slice(input: &[u8], count: usize) -> Result<Vec<u32>, VarintError> {
    let mut out = Vec::with_capacity(count);
    let mut offset = 0;
    for _ in 0..count {
        let (value, used) = decode_u32(&input[offset..])?;
        out.push(value);
        offset += used;
    }
    if offset != input.len() {
        return Err(VarintError::Overlong);
    }
    Ok(out)
}

/// Total encoded size of `values` without materialising the bytes.
pub fn encoded_len(values: &[u32]) -> usize {
    values.iter().map(|&v| encoded_len_u32(v)).sum()
}

/// Delta + LEB128 encode a non-decreasing sequence.
///
/// The first element is stored verbatim; every later element is stored as the
/// difference to its predecessor.  Word-major word ids and CSR row pointers
/// are non-decreasing, so most deltas are 0 or 1 and fit in one byte.
///
/// # Panics
/// Panics if the sequence is not non-decreasing (that would corrupt the
/// stream silently otherwise).
pub fn encode_deltas(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len());
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            encode_u32(v, &mut out);
        } else {
            assert!(
                v >= prev,
                "delta encoding requires a non-decreasing sequence"
            );
            encode_u32(v - prev, &mut out);
        }
        prev = v;
    }
    out
}

/// Decode `count` values previously produced by [`encode_deltas`].
pub fn decode_deltas(input: &[u8], count: usize) -> Result<Vec<u32>, VarintError> {
    let deltas = decode_slice(input, count)?;
    let mut out = Vec::with_capacity(count);
    let mut prev = 0u32;
    for (i, &d) in deltas.iter().enumerate() {
        let v = if i == 0 {
            d
        } else {
            prev.checked_add(d).ok_or(VarintError::Overflow)?
        };
        out.push(v);
        prev = v;
    }
    Ok(out)
}

/// Encoded size of [`encode_deltas`] without materialising the bytes.
///
/// # Panics
/// Panics if the sequence is not non-decreasing.
pub fn delta_encoded_len(values: &[u32]) -> usize {
    let mut total = 0;
    let mut prev = 0u32;
    for (i, &v) in values.iter().enumerate() {
        if i == 0 {
            total += encoded_len_u32(v);
        } else {
            assert!(
                v >= prev,
                "delta encoding requires a non-decreasing sequence"
            );
            total += encoded_len_u32(v - prev);
        }
        prev = v;
    }
    total
}

/// Compression summary of one encoded stream, for transfer-model reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecStats {
    /// Bytes of the uncompressed 32-bit representation.
    pub raw_bytes: u64,
    /// Bytes after encoding.
    pub encoded_bytes: u64,
}

impl CodecStats {
    /// `encoded / raw`; 1.0 when the input is empty.
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.raw_bytes as f64
        }
    }
}

/// Size accounting for delta-encoding a non-decreasing sequence.
pub fn delta_stats(values: &[u32]) -> CodecStats {
    CodecStats {
        raw_bytes: (values.len() * 4) as u64,
        encoded_bytes: delta_encoded_len(values) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value_round_trip_at_width_boundaries() {
        for &v in &[
            0u32,
            1,
            127,
            128,
            16_383,
            16_384,
            2_097_151,
            2_097_152,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), encoded_len_u32(v));
            let (decoded, used) = decode_u32(&buf).unwrap();
            assert_eq!(decoded, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn slice_round_trip() {
        let values = vec![0u32, 300, 7, u32::MAX, 1, 128];
        let bytes = encode_slice(&values);
        assert_eq!(bytes.len(), encoded_len(&values));
        assert_eq!(decode_slice(&bytes, values.len()).unwrap(), values);
    }

    #[test]
    fn truncated_and_overlong_inputs_are_rejected() {
        assert_eq!(decode_u32(&[]), Err(VarintError::Truncated));
        assert_eq!(decode_u32(&[0x80, 0x80]), Err(VarintError::Truncated));
        assert_eq!(
            decode_u32(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01]),
            Err(VarintError::Overlong)
        );
        // A fifth byte carrying more than 4 payload bits does not fit in u32.
        assert_eq!(
            decode_u32(&[0xff, 0xff, 0xff, 0xff, 0x7f]),
            Err(VarintError::Overlong)
        );
        // Extra trailing bytes after the requested count.
        let bytes = encode_slice(&[1, 2, 3]);
        assert_eq!(decode_slice(&bytes, 2), Err(VarintError::Overlong));
    }

    #[test]
    fn word_major_word_ids_compress_well() {
        // A word-major chunk: long runs of the same word id.
        let mut ids = Vec::new();
        for w in 0..200u32 {
            for _ in 0..50 {
                ids.push(w);
            }
        }
        let stats = delta_stats(&ids);
        assert_eq!(stats.raw_bytes, ids.len() as u64 * 4);
        // Almost every delta is zero → close to 1 byte/token.
        assert!(stats.ratio() < 0.3, "ratio {}", stats.ratio());
        let bytes = encode_deltas(&ids);
        assert_eq!(bytes.len() as u64, stats.encoded_bytes);
        assert_eq!(decode_deltas(&bytes, ids.len()).unwrap(), ids);
    }

    #[test]
    fn delta_round_trip_handles_empty_and_single() {
        assert!(encode_deltas(&[]).is_empty());
        assert_eq!(decode_deltas(&[], 0).unwrap(), Vec::<u32>::new());
        let bytes = encode_deltas(&[42]);
        assert_eq!(decode_deltas(&bytes, 1).unwrap(), vec![42]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_sequences_are_rejected() {
        let _ = encode_deltas(&[5, 3]);
    }

    #[test]
    fn empty_stats_ratio_is_one() {
        assert_eq!(delta_stats(&[]).ratio(), 1.0);
    }
}
