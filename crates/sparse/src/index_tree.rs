//! Tree-based multinomial sampling (§6.1.1, Figure 5).
//!
//! Sampling a topic from an (unnormalised) probability vector `p[0..n)` is
//! reformulated as a search problem: draw `u ~ U(0, Σp)` and find the smallest
//! `k` such that `prefixSum[k] > u`.  A flat search touches `O(n)` memory; the
//! paper instead builds an *index tree* whose internal levels are small enough
//! to live in shared memory, so the off-chip traffic per sample shrinks to a
//! handful of leaf elements.
//!
//! CuLDA_CGS uses a 32-way tree because one warp (32 lanes) inspects the 32
//! children of a node in a single step.  The simulator keeps the fan-out
//! configurable so the ablation benchmarks can compare fan-outs, and so the
//! binary tree of Figure 5 can be reproduced in tests.

/// An N-ary index tree over the inclusive prefix sums of a weight vector.
#[derive(Debug, Clone)]
pub struct IndexTree {
    fanout: usize,
    /// `levels[0]` is the leaf level: the inclusive prefix sum of the weights.
    /// `levels[i+1][j]` is the running total at the end of the `j`-th block of
    /// `fanout` nodes of `levels[i]`.
    levels: Vec<Vec<f32>>,
    total: f32,
}

/// Per-sample traversal statistics, used by the GPU cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TreeSampleStats {
    /// Number of tree nodes inspected during the descent.
    pub nodes_visited: u32,
    /// Number of levels traversed (including the leaf level).
    pub levels: u32,
}

impl IndexTree {
    /// The fan-out used by CuLDA_CGS on NVIDIA GPUs (one warp inspects one
    /// node's children in a single step).
    pub const WARP_FANOUT: usize = 32;

    /// Build a tree with the given fan-out from raw (unnormalised,
    /// non-negative) weights.
    ///
    /// # Panics
    /// Panics if `fanout < 2` or `weights` is empty.
    pub fn with_fanout(fanout: usize, weights: &[f32]) -> Self {
        assert!(fanout >= 2, "fan-out must be at least 2");
        assert!(
            !weights.is_empty(),
            "cannot build an index tree over no weights"
        );
        let mut leaf = Vec::with_capacity(weights.len());
        let mut acc = 0.0f32;
        for &w in weights {
            debug_assert!(w >= 0.0, "negative weight {w}");
            acc += w;
            leaf.push(acc);
        }
        let total = acc;
        let mut levels = vec![leaf];
        while levels.last().unwrap().len() > fanout {
            let below = levels.last().unwrap();
            let mut up = Vec::with_capacity(below.len().div_ceil(fanout));
            for block in below.chunks(fanout) {
                // The running total at the end of this block is simply the
                // last prefix-sum entry in the block.
                up.push(*block.last().unwrap());
            }
            levels.push(up);
        }
        IndexTree {
            fanout,
            levels,
            total,
        }
    }

    /// Build a 32-way tree (the configuration used by the paper's kernels).
    pub fn new(weights: &[f32]) -> Self {
        Self::with_fanout(Self::WARP_FANOUT, weights)
    }

    /// The sum of all weights (`S` for the sparse part, `Q` for the dense
    /// part of the decomposed distribution).
    #[inline]
    pub fn total(&self) -> f32 {
        self.total
    }

    /// Number of leaves (the length of the weight vector).
    #[inline]
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// True when the tree has no leaves (never constructed in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.levels[0].is_empty()
    }

    /// Number of levels, including the leaf level.
    #[inline]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Number of internal (non-leaf) nodes — this is what must fit in shared
    /// memory, and is what makes the tree attractive on a GPU.
    pub fn internal_nodes(&self) -> usize {
        self.levels[1..].iter().map(Vec::len).sum()
    }

    /// Bytes of shared memory the internal levels occupy (4 bytes per node).
    pub fn shared_bytes(&self) -> u64 {
        (self.internal_nodes() * 4) as u64
    }

    /// Bytes of (off-chip or shared, depending on placement) memory the leaf
    /// prefix-sum level occupies.
    pub fn leaf_bytes(&self) -> u64 {
        (self.len() * 4) as u64
    }

    /// Sample the smallest index `k` with `prefixSum[k] > u`.
    ///
    /// `u` must lie in `[0, total)`; values outside the range are clamped to
    /// the last index, which matches the behaviour of the CUDA kernel when
    /// floating-point rounding pushes `u` marginally past the total.
    #[inline]
    pub fn sample(&self, u: f32) -> usize {
        self.sample_with_stats(u).0
    }

    /// [`IndexTree::sample`] plus traversal statistics for the cost model.
    pub fn sample_with_stats(&self, u: f32) -> (usize, TreeSampleStats) {
        let mut stats = TreeSampleStats::default();
        // Descend from the top level; `block` is the index of the block of
        // `fanout` nodes at the current level that contains the answer.
        let mut block = 0usize;
        for level in self.levels.iter().rev() {
            stats.levels += 1;
            let start = block * self.fanout;
            let end = (start + self.fanout).min(level.len());
            // A real warp inspects all children at once; the simulator scans
            // them sequentially and counts each node visited.
            let mut child = end - 1; // default: last child (clamp)
            for (i, &v) in level[start..end].iter().enumerate() {
                stats.nodes_visited += 1;
                if u < v {
                    child = start + i;
                    break;
                }
            }
            block = child;
        }
        (block, stats)
    }

    /// The leaf-level prefix sums (exposed for tests and for the cost model).
    pub fn leaf_prefix(&self) -> &[f32] {
        &self.levels[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from Figure 5 of the paper (binary tree over 8
    /// probabilities, u = 0.15 selects index 5).
    #[test]
    fn figure5_example() {
        let p = [0.01, 0.02, 0.03, 0.02, 0.04, 0.06, 0.01, 0.01];
        let tree = IndexTree::with_fanout(2, &p);
        assert!((tree.total() - 0.20).abs() < 1e-6);
        let (k, _) = tree.sample_with_stats(0.15);
        assert_eq!(k, 5);
    }

    #[test]
    fn sample_matches_linear_search_for_all_buckets() {
        let p = [0.1f32, 0.0, 0.25, 0.05, 0.3, 0.3];
        let tree = IndexTree::with_fanout(2, &p);
        let prefix = tree.leaf_prefix().to_vec();
        for i in 0..600 {
            let u = i as f32 / 600.0 * tree.total() * 0.999;
            let linear = crate::prefix::search_prefix(&prefix, u);
            assert_eq!(tree.sample(u), linear, "mismatch at u={u}");
        }
    }

    #[test]
    fn warp_fanout_tree_handles_large_k() {
        let weights: Vec<f32> = (0..4096).map(|i| ((i * 37) % 101) as f32 + 0.5).collect();
        let tree = IndexTree::new(&weights);
        assert_eq!(tree.len(), 4096);
        // 4096 leaves / 32 = 128 internal + 4 above = at most 3 levels total.
        assert!(tree.depth() <= 3, "depth {}", tree.depth());
        // Internal nodes must be small enough for shared memory (48 KiB).
        assert!(tree.shared_bytes() < 48 * 1024);
        // Spot-check samples against linear search.
        let prefix = tree.leaf_prefix().to_vec();
        for i in 0..200 {
            let u = (i as f32 + 0.5) / 200.0 * tree.total();
            assert_eq!(tree.sample(u), crate::prefix::search_prefix(&prefix, u));
        }
    }

    #[test]
    fn zero_weight_buckets_are_never_selected() {
        let p = [0.0f32, 0.5, 0.0, 0.5, 0.0];
        let tree = IndexTree::with_fanout(2, &p);
        for i in 0..100 {
            let u = i as f32 / 100.0 * tree.total() * 0.999;
            let k = tree.sample(u);
            assert!(k == 1 || k == 3, "selected zero-probability bucket {k}");
        }
    }

    #[test]
    fn single_element_tree() {
        let tree = IndexTree::new(&[2.5]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.depth(), 1);
        assert_eq!(tree.sample(1.0), 0);
        assert_eq!(tree.internal_nodes(), 0);
    }

    #[test]
    fn out_of_range_u_clamps_to_last_index() {
        let tree = IndexTree::with_fanout(2, &[0.3, 0.3, 0.4]);
        assert_eq!(tree.sample(10.0), 2);
    }

    #[test]
    fn stats_count_levels_and_nodes() {
        let weights = vec![1.0f32; 64];
        let tree = IndexTree::new(&weights); // 64 leaves, fanout 32 → 2 levels
        let (_, stats) = tree.sample_with_stats(5.5);
        assert_eq!(stats.levels, 2);
        assert!(stats.nodes_visited >= 2);
        assert!(stats.nodes_visited <= 64);
    }

    #[test]
    fn depth_grows_logarithmically() {
        let weights = vec![1.0f32; 32 * 32 * 4];
        let tree = IndexTree::new(&weights);
        assert_eq!(tree.depth(), 3);
        let tree2 = IndexTree::with_fanout(2, &vec![1.0f32; 1024]);
        assert_eq!(tree2.depth(), 10);
    }

    #[test]
    #[should_panic]
    fn empty_weights_panic() {
        let _ = IndexTree::new(&[]);
    }
}
