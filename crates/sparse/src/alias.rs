//! Vose alias tables for O(1) multinomial sampling.
//!
//! CuLDA_CGS itself samples with index trees (see [`crate::index_tree`]), but
//! two other sampler families in the workspace draw from alias tables that
//! are rebuilt on a cadence and left *stale* in between:
//!
//! * the WarpLDA and AliasLDA CPU baselines (Metropolis–Hastings samplers
//!   whose word-proposal distribution comes from a per-word alias table), and
//! * the `AliasHybridSampler` GPU kernel in `culda-core`, which replaces the
//!   per-word dense index tree with a stale alias table plus an MH
//!   correction against the fresh φ.
//!
//! Both share the [`AliasTable`] construction and the [`StaleAliasProposal`]
//! bundle (table + the stale weights and mass the MH acceptance ratio
//! needs), so there is exactly one Walker/Vose implementation in the tree.

use rand::Rng;

/// A Vose alias table over `n` buckets.
///
/// Construction is `O(n)`; each draw is `O(1)` (one uniform, one comparison,
/// at most one indirection).
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability of each bucket.
    prob: Vec<f32>,
    /// Alias bucket used when the acceptance test fails.
    alias: Vec<u32>,
    /// Total weight the table was built from (kept for diagnostics).
    total: f64,
}

impl AliasTable {
    /// Build an alias table from unnormalised, non-negative weights.
    ///
    /// Zero-weight buckets are valid and will (up to floating-point error)
    /// never be drawn.  An all-zero weight vector yields a uniform table,
    /// matching the convention of the reference WarpLDA implementation.
    ///
    /// # Panics
    /// Panics if `weights` is empty.
    pub fn new(weights: &[f32]) -> Self {
        assert!(
            !weights.is_empty(),
            "cannot build an alias table over no weights"
        );
        let n = weights.len();
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        if total <= 0.0 {
            return AliasTable {
                prob: vec![1.0; n],
                alias: (0..n as u32).collect(),
                total: 0.0,
            };
        }
        // Scale weights so the average bucket has weight 1.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w as f64 * scale).collect();

        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &w) in scaled.iter().enumerate() {
            if w < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }

        let mut prob = vec![1.0f32; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();

        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s as usize] = scaled[s as usize] as f32;
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Whatever is left (numerical leftovers) gets probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }

        AliasTable { prob, alias, total }
    }

    /// Number of buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no buckets (never constructed in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// The total weight the table was built from.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Draw one bucket index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f32>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Draw one bucket index from two externally supplied uniforms in
    /// `[0, 1)`: `u_bucket` picks the bucket, `u_accept` runs the acceptance
    /// test.  A pure function of its inputs, so callers feeding counter-based
    /// draws (the determinism contract of `culda-core`'s samplers) get the
    /// same bucket no matter which thread block or device evaluates it.
    #[inline]
    pub fn sample_with(&self, u_bucket: f32, u_accept: f32) -> usize {
        let n = self.prob.len();
        let i = ((u_bucket * n as f32) as usize).min(n - 1);
        if u_accept < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// A per-word *stale* proposal distribution: an alias table over the word's
/// unnormalised per-topic weights, kept together with those weights and
/// their sum, which a Metropolis–Hastings correction step needs to evaluate
/// the proposal density of an arbitrary topic.
///
/// Built by the AliasLDA baseline and the `AliasHybridSampler` kernel from
/// the word term `(φ_{k,v} + β) / (n_k + Vβ)` of the collapsed conditional;
/// "stale" because the table is rebuilt on a cadence while the counts keep
/// moving, with the staleness corrected by an MH acceptance step against the
/// fresh counts.
#[derive(Debug, Clone)]
pub struct StaleAliasProposal {
    table: AliasTable,
    /// The unnormalised weights the table was built from, kept in f64 so the
    /// MH acceptance ratio evaluates them at full precision.
    weights: Vec<f64>,
    /// Sum of `weights` (the stale proposal mass).
    mass: f64,
}

impl StaleAliasProposal {
    /// Bundle a weight vector into a proposal (table construction casts the
    /// weights to f32, exactly as the reference AliasLDA implementation
    /// does; the retained weights stay f64).
    ///
    /// # Panics
    /// Panics if `weights` is empty (see [`AliasTable::new`]).
    pub fn from_weights(weights: Vec<f64>) -> Self {
        let mass: f64 = weights.iter().sum();
        let as_f32: Vec<f32> = weights.iter().map(|&x| x as f32).collect();
        StaleAliasProposal {
            table: AliasTable::new(&as_f32),
            weights,
            mass,
        }
    }

    /// The alias table over the stale weights.
    #[inline]
    pub fn table(&self) -> &AliasTable {
        &self.table
    }

    /// The stale weight of bucket `k`.
    #[inline]
    pub fn weight(&self, k: usize) -> f64 {
        self.weights[k]
    }

    /// The stale proposal mass (sum of all weights).
    #[inline]
    pub fn mass(&self) -> f64 {
        self.mass
    }

    /// Number of buckets.
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when the proposal has no buckets (never constructed in practice).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn empirical(weights: &[f32], draws: usize) -> Vec<f64> {
        let table = AliasTable::new(weights);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn uniform_weights_draw_uniformly() {
        let freq = empirical(&[1.0, 1.0, 1.0, 1.0], 80_000);
        for f in freq {
            assert!((f - 0.25).abs() < 0.02, "frequency {f} too far from 0.25");
        }
    }

    #[test]
    fn skewed_weights_follow_distribution() {
        let w = [8.0, 1.0, 1.0];
        let freq = empirical(&w, 120_000);
        assert!((freq[0] - 0.8).abs() < 0.02);
        assert!((freq[1] - 0.1).abs() < 0.02);
        assert!((freq[2] - 0.1).abs() < 0.02);
    }

    #[test]
    fn zero_weight_bucket_is_never_drawn() {
        let freq = empirical(&[0.0, 1.0, 3.0], 50_000);
        assert_eq!(freq[0], 0.0);
        assert!((freq[2] - 0.75).abs() < 0.02);
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let freq = empirical(&[0.0, 0.0], 10_000);
        assert!((freq[0] - 0.5).abs() < 0.05);
    }

    #[test]
    fn single_bucket_always_selected() {
        let table = AliasTable::new(&[0.4]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn total_is_preserved() {
        let table = AliasTable::new(&[2.0, 3.0, 5.0]);
        assert!((table.total() - 10.0).abs() < 1e-9);
        assert_eq!(table.len(), 3);
    }

    #[test]
    #[should_panic]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    fn sample_with_matches_the_distribution_and_is_pure() {
        let w = [6.0f32, 3.0, 1.0];
        let table = AliasTable::new(&w);
        // Purity: same uniforms, same bucket.
        assert_eq!(table.sample_with(0.4, 0.7), table.sample_with(0.4, 0.7));
        // Sweep a deterministic grid of uniforms; the empirical frequencies
        // must follow the weights.
        let mut counts = [0usize; 3];
        let n = 400;
        for a in 0..n {
            for b in 0..n {
                let u1 = (a as f32 + 0.5) / n as f32;
                let u2 = (b as f32 + 0.5) / n as f32;
                counts[table.sample_with(u1, u2)] += 1;
            }
        }
        let total = (n * n) as f64;
        assert!((counts[0] as f64 / total - 0.6).abs() < 0.01);
        assert!((counts[1] as f64 / total - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / total - 0.1).abs() < 0.01);
        // Edge uniforms stay in range.
        assert!(table.sample_with(0.9999999, 0.9999999) < 3);
        assert!(table.sample_with(0.0, 0.0) < 3);
    }

    #[test]
    fn stale_proposal_keeps_weights_mass_and_table_consistent() {
        let p = StaleAliasProposal::from_weights(vec![2.0, 3.0, 5.0]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!((p.mass() - 10.0).abs() < 1e-12);
        assert_eq!(p.weight(1), 3.0);
        assert!((p.table().total() - 10.0).abs() < 1e-6);
        assert_eq!(p.table().len(), 3);
    }
}
