//! Prefix sums (scans).
//!
//! Prefix sums appear in two places in CuLDA_CGS:
//!
//! * the index tree for tree-based sampling is built over the *inclusive*
//!   prefix sum of the (sparse or dense) probability vector (§6.1.1, Fig. 5);
//! * the update-θ kernel compacts a dense per-document scratch row back into
//!   CSR using an *exclusive* prefix sum over per-row non-zero counts (§6.2).
//!
//! Both a sequential implementation (used inside a single simulated thread
//! block) and a rayon-parallel implementation (used host-side when rebuilding
//! a whole chunk's row pointers) are provided.  The parallel scan runs on
//! real OS threads; its fixed block decomposition — not thread arrival
//! order — defines every intermediate sum, so its output is bit-identical
//! at any thread count.

use rayon::prelude::*;

/// In-place inclusive prefix sum: `out[i] = Σ_{j<=i} in[j]`.
pub fn inclusive_scan_f32(values: &mut [f32]) {
    let mut acc = 0.0f32;
    for v in values.iter_mut() {
        acc += *v;
        *v = acc;
    }
}

/// Inclusive prefix sum into a new vector, returning the total as well.
pub fn inclusive_scan_f32_to(values: &[f32]) -> (Vec<f32>, f32) {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0.0f32;
    for &v in values {
        acc += v;
        out.push(acc);
    }
    (out, acc)
}

/// In-place exclusive prefix sum over `u32` counts:
/// `out[i] = Σ_{j<i} in[j]`; returns the grand total.
pub fn exclusive_scan_u32(values: &mut [u32]) -> u32 {
    let mut acc = 0u32;
    for v in values.iter_mut() {
        let cur = *v;
        *v = acc;
        acc += cur;
    }
    acc
}

/// Exclusive prefix sum producing a `rows + 1` CSR-style row pointer array
/// from per-row counts.
pub fn row_ptr_from_counts(counts: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    out.push(0);
    for &c in counts {
        acc += c;
        out.push(acc);
    }
    out
}

/// Parallel exclusive prefix sum over `u64` counts, returning a `len + 1`
/// offsets array.  Used host-side when partitioning a corpus into chunks by
/// token count (§5.1) where the number of documents can be in the millions.
///
/// The implementation is a classic two-pass block scan: per-block sums are
/// computed in parallel, scanned sequentially (the number of blocks is tiny),
/// and then each block is re-scanned in parallel with its offset.
pub fn parallel_offsets_u64(counts: &[u64]) -> Vec<u64> {
    const BLOCK: usize = 16_384;
    if counts.len() <= BLOCK {
        let mut out = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0u64;
        out.push(0);
        for &c in counts {
            acc += c;
            out.push(acc);
        }
        return out;
    }

    let block_sums: Vec<u64> = counts
        .par_chunks(BLOCK)
        .map(|chunk| chunk.iter().sum())
        .collect();

    let mut block_offsets = Vec::with_capacity(block_sums.len());
    let mut acc = 0u64;
    for &s in &block_sums {
        block_offsets.push(acc);
        acc += s;
    }
    let total = acc;

    let mut out = vec![0u64; counts.len() + 1];
    out[counts.len()] = total;
    // Fill out[0..len) in parallel, one block at a time.
    out[..counts.len()]
        .par_chunks_mut(BLOCK)
        .zip(counts.par_chunks(BLOCK))
        .zip(block_offsets.par_iter())
        .for_each(|((out_chunk, in_chunk), &base)| {
            let mut acc = base;
            for (o, &c) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc;
                acc += c;
            }
        });
    out
}

/// Binary search over an inclusive prefix-sum array: smallest `i` such that
/// `u < prefix[i]`.  This is the "search problem" formulation of multinomial
/// sampling that the index tree accelerates (§6.1.1).
pub fn search_prefix(prefix: &[f32], u: f32) -> usize {
    debug_assert!(!prefix.is_empty());
    let mut lo = 0usize;
    let mut hi = prefix.len();
    while lo < hi {
        let mid = (lo + hi) / 2;
        if u < prefix[mid] {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo.min(prefix.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inclusive_scan_basic() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0];
        inclusive_scan_f32(&mut v);
        assert_eq!(v, vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn inclusive_scan_to_returns_total() {
        let (p, total) = inclusive_scan_f32_to(&[0.5, 0.25, 0.25]);
        assert_eq!(p, vec![0.5, 0.75, 1.0]);
        assert!((total - 1.0).abs() < 1e-6);
    }

    #[test]
    fn exclusive_scan_u32_basic() {
        let mut v = vec![3, 0, 2, 5];
        let total = exclusive_scan_u32(&mut v);
        assert_eq!(v, vec![0, 3, 3, 5]);
        assert_eq!(total, 10);
    }

    #[test]
    fn row_ptr_from_counts_matches_manual() {
        assert_eq!(row_ptr_from_counts(&[2, 0, 3]), vec![0, 2, 2, 5]);
        assert_eq!(row_ptr_from_counts(&[]), vec![0]);
    }

    #[test]
    fn parallel_offsets_small_input() {
        assert_eq!(parallel_offsets_u64(&[1, 2, 3]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn parallel_offsets_matches_sequential_on_large_input() {
        let counts: Vec<u64> = (0..100_000u64).map(|i| i % 7).collect();
        let par = parallel_offsets_u64(&counts);
        let mut acc = 0u64;
        let mut seq = vec![0u64];
        for &c in &counts {
            acc += c;
            seq.push(acc);
        }
        assert_eq!(par, seq);
    }

    #[test]
    fn search_prefix_finds_first_bucket_exceeding_u() {
        let p = vec![0.1, 0.3, 0.6, 1.0];
        assert_eq!(search_prefix(&p, 0.05), 0);
        assert_eq!(search_prefix(&p, 0.1), 1);
        assert_eq!(search_prefix(&p, 0.59), 2);
        assert_eq!(search_prefix(&p, 0.99), 3);
        // Out-of-range u clamps to the last bucket.
        assert_eq!(search_prefix(&p, 2.0), 3);
    }

    #[test]
    fn search_prefix_single_element() {
        assert_eq!(search_prefix(&[1.0], 0.3), 0);
    }
}
