//! Dense matrices for the topic–word model φ.
//!
//! φ is a dense `K × V` count matrix (§2.1).  The sampling kernel reads it
//! column-wise (all topics of one word), and the update-φ kernel writes it
//! with atomic adds (§6.2), so two variants are provided:
//!
//! * [`DenseMatrix`] — plain row-major storage, generic over the element type
//!   (the paper compresses φ to 16-bit entries, `DenseMatrix<u16>`).
//! * [`AtomicMatrix`] — `AtomicU32` storage shared between thread blocks
//!   during the update kernels.  Blocks execute on real OS threads, so these
//!   atomics are load-bearing, not simulation theater: they must stay
//!   relaxed-ordering *additive* updates (commutative), which is what keeps
//!   the accumulated counts independent of block scheduling.

use std::sync::atomic::{AtomicI64, AtomicU32, Ordering};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DenseMatrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> DenseMatrix<T> {
    /// A matrix of the given shape filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable access to element `(r, c)`.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// Set element `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The whole backing buffer in row-major order.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Size in bytes of the device-resident representation.
    pub fn device_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<T>()) as u64
    }
}

impl DenseMatrix<u32> {
    /// Column `c` gathered into a fresh vector (φ is read per word, i.e. per
    /// column, by the sampling kernel).
    pub fn column(&self, c: usize) -> Vec<u32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Per-row sums (for φ these are the topic totals `n_k = Σ_v φ[k,v]`).
    pub fn row_sums(&self) -> Vec<u64> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|&v| v as u64).sum())
            .collect()
    }

    /// Sum of every element.
    pub fn total(&self) -> u64 {
        self.data.iter().map(|&v| v as u64).sum()
    }
}

/// A dense matrix of `AtomicU32`, used where simulated thread blocks running
/// on different host threads must update the same model replica (update-φ,
/// §6.2, and the dense scratch row of update-θ).
#[derive(Debug)]
pub struct AtomicMatrix {
    rows: usize,
    cols: usize,
    data: Vec<AtomicU32>,
}

impl AtomicMatrix {
    /// A zero-filled atomic matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        data.resize_with(rows * cols, || AtomicU32::new(0));
        AtomicMatrix { rows, cols, data }
    }

    /// Copy a plain matrix into a fresh atomic one.
    pub fn from_dense(m: &DenseMatrix<u32>) -> Self {
        let a = AtomicMatrix::zeros(m.rows(), m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                a.store(r, c, m.get(r, c));
            }
        }
        a
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.rows && c < self.cols);
        r * self.cols + c
    }

    /// Relaxed load of element `(r, c)`.
    #[inline]
    pub fn load(&self, r: usize, c: usize) -> u32 {
        self.data[self.idx(r, c)].load(Ordering::Relaxed)
    }

    /// Relaxed store of element `(r, c)`.
    #[inline]
    pub fn store(&self, r: usize, c: usize, v: u32) {
        self.data[self.idx(r, c)].store(v, Ordering::Relaxed)
    }

    /// Atomic `fetch_add`, mirroring CUDA's `atomicAdd`.
    #[inline]
    pub fn fetch_add(&self, r: usize, c: usize, v: u32) -> u32 {
        self.data[self.idx(r, c)].fetch_add(v, Ordering::Relaxed)
    }

    /// Atomic saturating decrement, mirroring `atomicSub` on counts.
    ///
    /// Counts never go negative in a correct sampler; in debug builds an
    /// underflow panics so bugs surface in tests.
    #[inline]
    pub fn fetch_sub(&self, r: usize, c: usize, v: u32) -> u32 {
        let prev = self.data[self.idx(r, c)].fetch_sub(v, Ordering::Relaxed);
        debug_assert!(
            prev >= v,
            "AtomicMatrix underflow at ({r},{c}): {prev} - {v}"
        );
        prev
    }

    /// Reset every element to zero.
    pub fn clear(&self) {
        for x in &self.data {
            x.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot into a plain matrix.
    pub fn to_dense(&self) -> DenseMatrix<u32> {
        let data = self
            .data
            .iter()
            .map(|x| x.load(Ordering::Relaxed))
            .collect();
        DenseMatrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise add another atomic matrix into `self`
    /// (the reduce step of the φ synchronization, §5.2).
    pub fn add_from(&self, other: &AtomicMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (dst, src) in self.data.iter().zip(&other.data) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Overwrite `self` with the contents of `other`
    /// (the broadcast step of the φ synchronization, §5.2).
    pub fn copy_from(&self, other: &AtomicMatrix) {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        for (dst, src) in self.data.iter().zip(&other.data) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Size in bytes of the device-resident representation assuming the
    /// 16-bit compressed layout of §6.1.3 (the simulator stores u32 on the
    /// host for convenience, but the *device* model and the transfer model
    /// charge 2 bytes per element).
    pub fn device_bytes_compressed(&self) -> u64 {
        (self.data.len() * 2) as u64
    }

    /// Size in bytes of the uncompressed (u32) representation.
    pub fn device_bytes_uncompressed(&self) -> u64 {
        (self.data.len() * 4) as u64
    }
}

/// A vector of atomic 64-bit signed counters, used for the global topic
/// totals `n_k` which can exceed 32 bits on billion-token corpora.
#[derive(Debug)]
pub struct AtomicCounts {
    data: Vec<AtomicI64>,
}

impl AtomicCounts {
    /// `len` zero-initialised counters.
    pub fn zeros(len: usize) -> Self {
        let mut data = Vec::with_capacity(len);
        data.resize_with(len, || AtomicI64::new(0));
        AtomicCounts { data }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load.
    #[inline]
    pub fn load(&self, i: usize) -> i64 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, i: usize, v: i64) {
        self.data[i].store(v, Ordering::Relaxed)
    }

    /// Atomic add (may be negative).
    #[inline]
    pub fn fetch_add(&self, i: usize, v: i64) -> i64 {
        self.data[i].fetch_add(v, Ordering::Relaxed)
    }

    /// Reset all counters to zero.
    pub fn clear(&self) {
        for x in &self.data {
            x.store(0, Ordering::Relaxed);
        }
    }

    /// Snapshot to a plain vector.
    pub fn to_vec(&self) -> Vec<i64> {
        self.data
            .iter()
            .map(|x| x.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_get_set_round_trip() {
        let mut m: DenseMatrix<u32> = DenseMatrix::zeros(3, 4);
        m.set(1, 2, 42);
        assert_eq!(m.get(1, 2), 42);
        assert_eq!(m.get(0, 0), 0);
        assert_eq!(m.row(1), &[0, 0, 42, 0]);
    }

    #[test]
    fn dense_from_vec_checks_shape() {
        let m = DenseMatrix::from_vec(2, 2, vec![1u32, 2, 3, 4]);
        assert_eq!(m.get(1, 0), 3);
        assert_eq!(m.column(1), vec![2, 4]);
        assert_eq!(m.row_sums(), vec![3, 7]);
        assert_eq!(m.total(), 10);
    }

    #[test]
    #[should_panic]
    fn dense_from_vec_panics_on_bad_shape() {
        let _ = DenseMatrix::from_vec(2, 3, vec![1u32, 2, 3, 4]);
    }

    #[test]
    fn dense_u16_device_bytes_are_half_of_u32() {
        let a: DenseMatrix<u16> = DenseMatrix::zeros(4, 8);
        let b: DenseMatrix<u32> = DenseMatrix::zeros(4, 8);
        assert_eq!(a.device_bytes() * 2, b.device_bytes());
    }

    #[test]
    fn atomic_fetch_add_and_snapshot() {
        let a = AtomicMatrix::zeros(2, 2);
        a.fetch_add(0, 1, 5);
        a.fetch_add(0, 1, 2);
        a.fetch_add(1, 0, 1);
        let d = a.to_dense();
        assert_eq!(d.get(0, 1), 7);
        assert_eq!(d.get(1, 0), 1);
        assert_eq!(d.get(1, 1), 0);
    }

    #[test]
    fn atomic_add_from_and_copy_from() {
        let a = AtomicMatrix::zeros(1, 3);
        let b = AtomicMatrix::zeros(1, 3);
        a.fetch_add(0, 0, 1);
        b.fetch_add(0, 0, 2);
        b.fetch_add(0, 2, 9);
        a.add_from(&b);
        assert_eq!(a.to_dense().as_slice(), &[3, 0, 9]);
        b.copy_from(&a);
        assert_eq!(b.to_dense().as_slice(), &[3, 0, 9]);
    }

    #[test]
    fn atomic_matrix_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AtomicMatrix>();
        assert_send_sync::<AtomicCounts>();
    }

    #[test]
    fn atomic_parallel_updates_are_not_lost() {
        use rayon::prelude::*;
        let a = AtomicMatrix::zeros(4, 4);
        (0..1000usize).into_par_iter().for_each(|i| {
            a.fetch_add(i % 4, (i / 4) % 4, 1);
        });
        assert_eq!(a.to_dense().total(), 1000);
    }

    #[test]
    fn atomic_counts_add_and_clear() {
        let c = AtomicCounts::zeros(3);
        c.fetch_add(0, 10);
        c.fetch_add(0, -4);
        c.fetch_add(2, 7);
        assert_eq!(c.to_vec(), vec![6, 0, 7]);
        assert_eq!(c.len(), 3);
        c.clear();
        assert_eq!(c.to_vec(), vec![0, 0, 0]);
    }

    #[test]
    fn compressed_device_bytes_halved() {
        let a = AtomicMatrix::zeros(8, 8);
        assert_eq!(
            a.device_bytes_compressed() * 2,
            a.device_bytes_uncompressed()
        );
    }
}
