//! # culda-testkit
//!
//! Shared machinery for the cross-sampler test harness:
//!
//! * **Fixtures** ([`fixtures`]): seeded synthetic corpora in standard sizes,
//!   so every test in the workspace exercises the same reproducible inputs.
//! * **Conformance** ([`conformance`]): a sampler-agnostic invariant battery
//!   run against anything implementing [`LdaSolver`] + [`SolverState`] —
//!   count conservation, non-negativity, φ/θ normalization, and
//!   monotone-ish log-likelihood.  The CuLDA trainer and all seven baseline
//!   solvers are driven through the *same* checks.
//! * **Determinism** ([`determinism`]): signatures of topic-assignment state,
//!   used to prove that the same seed produces bit-identical assignments
//!   across runs and across GPU topologies.
//!
//! The crate deliberately contains no `#[test]` functions of its own beyond
//! unit tests of the helpers: the suites instantiating it live in the
//! workspace root's `tests/` directory (tier-1) and can be reused by any
//! future solver by implementing the two traits.

#![warn(missing_docs)]

pub use culda_baselines::{LdaSolver, SolverState};

pub mod fixtures {
    //! Seeded synthetic corpora in standard sizes.

    use culda_corpus::{Corpus, DatasetProfile, LdaGenerator};

    /// The seed used by every standard fixture.
    pub const FIXTURE_SEED: u64 = 0xC01DA;

    /// A tiny corpus (~60 docs) for smoke tests.
    pub fn tiny(seed: u64) -> Corpus {
        DatasetProfile {
            name: "testkit-tiny".into(),
            num_docs: 60,
            vocab_size: 50,
            avg_doc_len: 12.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(seed)
    }

    /// A small corpus (~200 docs) sized for per-solver conformance runs.
    pub fn small(seed: u64) -> Corpus {
        DatasetProfile {
            name: "testkit-small".into(),
            num_docs: 200,
            vocab_size: 120,
            avg_doc_len: 20.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(seed)
    }

    /// A corpus with planted topic structure (and the true φ it was drawn
    /// from), for tests that check samplers actually *recover* structure.
    pub fn planted(num_topics: usize, seed: u64) -> (Corpus, Vec<Vec<f64>>) {
        LdaGenerator::small(num_topics, 100, 220, 22.0).generate(seed)
    }

    /// A medium corpus that forces multi-chunk layouts when combined with
    /// `chunks_per_gpu`, for topology-determinism tests.
    pub fn medium(seed: u64) -> Corpus {
        DatasetProfile::nytimes()
            .scaled_to_tokens(8_000)
            .generate(seed)
    }

    /// The documents of a corpus as ingestible [`culda_corpus::Document`]s,
    /// in corpus order — the shape `StreamingSession::ingest` consumes.
    pub fn documents_of(corpus: &Corpus) -> Vec<culda_corpus::Document> {
        (0..corpus.num_docs())
            .map(|d| culda_corpus::Document::from(corpus.doc(d)))
            .collect()
    }

    /// Split a corpus into `batches` contiguous mini-batches of documents
    /// (the last batch takes the remainder).  Streaming-determinism tests
    /// ingest these separately and compare against ingesting
    /// [`documents_of`] in one call.
    pub fn doc_batches(corpus: &Corpus, batches: usize) -> Vec<Vec<culda_corpus::Document>> {
        let docs = documents_of(corpus);
        let per = docs.len().div_ceil(batches.max(1)).max(1);
        docs.chunks(per).map(|c| c.to_vec()).collect()
    }

    /// Deterministically permute a corpus's word ids (Fisher–Yates over an
    /// LCG stream).  The synthetic generators emit ids in Zipf-rank order —
    /// word 0 is the most frequent — whereas real corpora have alphabetical
    /// vocabularies with frequency spread across the id range; tests and
    /// examples that depend on the realistic spread (e.g. the sharded-sync
    /// overlap win) shuffle their corpora through this.
    pub fn shuffled_vocab(corpus: &Corpus) -> Corpus {
        use culda_corpus::CorpusBuilder;
        let v = corpus.vocab_size();
        let mut perm: Vec<u32> = (0..v as u32).collect();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in (1..v).rev() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (x >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mut b = CorpusBuilder::new(v);
        for d in 0..corpus.num_docs() {
            let doc: Vec<u32> = corpus.doc(d).iter().map(|&w| perm[w as usize]).collect();
            b.push_doc(&doc);
        }
        b.build()
    }
}

pub mod conformance {
    //! The sampler-agnostic invariant battery.

    use super::{LdaSolver, SolverState};

    /// A solver that can be driven by the conformance suite.
    pub trait ConformantSolver: LdaSolver + SolverState {}
    impl<T: LdaSolver + SolverState + ?Sized> ConformantSolver for T {}

    /// How many nats/token the likelihood may fall below its running
    /// maximum before the trajectory stops counting as "monotone-ish".
    /// Gibbs likelihood trajectories are stochastic, so small dips are
    /// expected; sustained collapse is a bug.
    pub const MAX_DRAWDOWN_NATS: f64 = 0.35;

    /// Every count-matrix invariant that must hold at any point in
    /// training, checked through [`SolverState`] alone:
    ///
    /// 1. `n_k` totals sum to the corpus token count (conservation);
    /// 2. φ row sums equal `n_k` per topic (φ/`n_k` consistency);
    /// 3. θ row `d` sums to the length of document `d` (θ conservation);
    /// 4. the column sums of θ equal `n_k` (θ/φ agree on topic masses);
    /// 5. every `z` assignment is a valid topic id and regenerating θ from
    ///    `z` reproduces the reported θ (assignments ↔ counts consistency);
    /// 6. the normalized φ̂/θ̂ rows are proper distributions (sum to 1).
    ///
    /// u32 storage makes literal negativity unrepresentable, so the
    /// non-negativity requirement is checked at its actual failure mode:
    /// underflow, which invariants 1–4 catch (a wrapped count inflates a
    /// sum by ~2³²).
    pub fn check_invariants(
        solver: &dyn ConformantSolver,
        doc_lens: &[usize],
        alpha: f64,
        beta: f64,
    ) -> Result<(), String> {
        let name = solver.name();
        let theta = solver.doc_topic_counts();
        let phi = solver.topic_word_counts();
        let nk = solver.topic_totals_vec();
        let z = solver.z_assignments();
        let tokens: u64 = doc_lens.iter().map(|&l| l as u64).sum();
        let k = nk.len();

        // 1. n_k conservation.
        let nk_sum: u64 = nk.iter().sum();
        if nk_sum != tokens {
            return Err(format!("{name}: n_k sums to {nk_sum}, corpus has {tokens}"));
        }

        // 2. φ rows match n_k.
        if phi.len() != k {
            return Err(format!("{name}: φ has {} rows, expected K={k}", phi.len()));
        }
        for (topic, row) in phi.iter().enumerate() {
            let sum: u64 = row.iter().map(|&c| c as u64).sum();
            if sum != nk[topic] {
                return Err(format!(
                    "{name}: φ row {topic} sums to {sum}, n_k says {}",
                    nk[topic]
                ));
            }
        }

        // 3. θ rows match document lengths.
        if theta.len() != doc_lens.len() {
            return Err(format!(
                "{name}: θ has {} rows, corpus has {} documents",
                theta.len(),
                doc_lens.len()
            ));
        }
        let mut theta_col_sums = vec![0u64; k];
        for (d, row) in theta.iter().enumerate() {
            let sum: u64 = row.iter().map(|&c| c as u64).sum();
            if sum != doc_lens[d] as u64 {
                return Err(format!(
                    "{name}: θ row {d} sums to {sum}, document has {} tokens",
                    doc_lens[d]
                ));
            }
            for (topic, &c) in row.iter().enumerate() {
                theta_col_sums[topic] += c as u64;
            }
        }

        // 4. θ column sums equal n_k.
        for topic in 0..k {
            if theta_col_sums[topic] != nk[topic] {
                return Err(format!(
                    "{name}: θ column {topic} sums to {}, n_k says {}",
                    theta_col_sums[topic], nk[topic]
                ));
            }
        }

        // 5. z is valid and regenerates θ.
        if z.len() != doc_lens.len() {
            return Err(format!(
                "{name}: z covers {} documents, corpus has {}",
                z.len(),
                doc_lens.len()
            ));
        }
        for (d, zd) in z.iter().enumerate() {
            if zd.len() != doc_lens[d] {
                return Err(format!(
                    "{name}: z row {d} has {} tokens, document has {}",
                    zd.len(),
                    doc_lens[d]
                ));
            }
            let mut counts = vec![0u32; k];
            for &topic in zd {
                if topic as usize >= k {
                    return Err(format!("{name}: z assigns invalid topic {topic} (K={k})"));
                }
                counts[topic as usize] += 1;
            }
            if counts != theta[d] {
                return Err(format!("{name}: θ row {d} does not match a recount of z"));
            }
        }

        // 6. Normalized rows are proper distributions.
        let v = phi.first().map(|r| r.len()).unwrap_or(0);
        for (topic, row) in phi.iter().enumerate() {
            let denom = nk[topic] as f64 + beta * v as f64;
            let total: f64 = row.iter().map(|&c| (c as f64 + beta) / denom).sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(format!("{name}: normalized φ̂ row {topic} sums to {total}"));
            }
        }
        for (d, row) in theta.iter().enumerate() {
            let denom = doc_lens[d] as f64 + alpha * k as f64;
            let total: f64 = row.iter().map(|&c| (c as f64 + alpha) / denom).sum();
            if (total - 1.0).abs() > 1e-6 {
                return Err(format!("{name}: normalized θ̂ row {d} sums to {total}"));
            }
        }

        Ok(())
    }

    /// Check a per-iteration log-likelihood trajectory is "monotone-ish":
    /// it must end above where it started, and never fall more than
    /// [`MAX_DRAWDOWN_NATS`] below its running maximum.
    pub fn check_loglik_trajectory(name: &str, series: &[f64]) -> Result<(), String> {
        if series.len() < 2 {
            return Err(format!("{name}: trajectory too short ({})", series.len()));
        }
        for (i, &ll) in series.iter().enumerate() {
            if !ll.is_finite() || ll >= 0.0 {
                return Err(format!(
                    "{name}: log-likelihood/token at iteration {i} is {ll} \
                     (must be finite and negative)"
                ));
            }
        }
        let first = series[0];
        let last = *series.last().unwrap();
        if last <= first {
            return Err(format!(
                "{name}: log-likelihood did not improve ({first:.4} → {last:.4})"
            ));
        }
        let mut running_max = f64::NEG_INFINITY;
        for (i, &ll) in series.iter().enumerate() {
            running_max = running_max.max(ll);
            if ll < running_max - MAX_DRAWDOWN_NATS {
                return Err(format!(
                    "{name}: log-likelihood collapsed at iteration {i}: \
                     {ll:.4} is more than {MAX_DRAWDOWN_NATS} nats below the \
                     running maximum {running_max:.4}"
                ));
            }
        }
        Ok(())
    }

    /// Drive `solver` for `iterations` sweeps, checking [`check_invariants`]
    /// at start, mid-run and end, and the likelihood trajectory over the
    /// whole run.  Returns the trajectory so callers can assert more.
    pub fn run_conformance(
        solver: &mut dyn ConformantSolver,
        doc_lens: &[usize],
        alpha: f64,
        beta: f64,
        iterations: usize,
    ) -> Result<Vec<f64>, String> {
        check_invariants(solver, doc_lens, alpha, beta)?;
        let mut series = Vec::with_capacity(iterations + 1);
        series.push(solver.loglik_per_token());
        for i in 0..iterations {
            let dt = solver.run_iteration();
            if !(dt > 0.0) || !dt.is_finite() {
                return Err(format!(
                    "{}: iteration {i} reported non-positive time {dt}",
                    solver.name()
                ));
            }
            series.push(solver.loglik_per_token());
            if i == iterations / 2 {
                check_invariants(solver, doc_lens, alpha, beta)?;
            }
        }
        check_invariants(solver, doc_lens, alpha, beta)?;
        check_loglik_trajectory(&solver.name(), &series)?;
        Ok(series)
    }
}

pub mod determinism {
    //! Signatures of assignment state for bit-exactness tests.

    use super::SolverState;

    /// A fully positional FNV-1a signature of the complete topic-assignment
    /// state: any single changed assignment changes the signature.
    pub fn z_signature(solver: &dyn SolverState) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut absorb = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (d, zd) in solver.z_assignments().iter().enumerate() {
            absorb(d as u64 ^ 0x5555_5555_5555_5555);
            for &topic in zd {
                absorb(topic as u64);
            }
        }
        h
    }

    /// Assert two solvers hold identical assignments, reporting the first
    /// differing document on failure.
    pub fn assert_same_assignments(a: &dyn SolverState, b: &dyn SolverState) {
        let za = a.z_assignments();
        let zb = b.z_assignments();
        assert_eq!(za.len(), zb.len(), "different document counts");
        for (d, (ra, rb)) in za.iter().zip(&zb).enumerate() {
            assert_eq!(ra, rb, "assignments differ at document {d}");
        }
    }
}

/// Per-document token counts of a corpus (the shape the conformance checks
/// need).
pub fn doc_lens(corpus: &culda_corpus::Corpus) -> Vec<usize> {
    (0..corpus.num_docs())
        .map(|d| corpus.doc(d).len())
        .collect()
}

pub mod golden {
    //! Golden on-disk checkpoint files, one per historical format version.
    //!
    //! The bytes are committed under `fixtures/` and embedded here; they are
    //! the back-compat contract of [`culda_core::ModelCheckpoint::read`]:
    //! every file must keep loading, forever, with the documented fallback
    //! semantics (v1 → no `z`, v1/v2 → sparse-CGS strategy, v1–v3 → no
    //! sampler resume state).  All four store the *same* trained model —
    //! sparse-CGS on the tiny fixture, K = 8 — so loaders can also assert
    //! the matrices agree across versions.

    /// A v1 file: model matrices only.
    pub const V1: &[u8] = include_bytes!("../fixtures/golden-v1.cldm");
    /// A v2 file: adds the z / iterations / seed section.
    pub const V2: &[u8] = include_bytes!("../fixtures/golden-v2.cldm");
    /// A v3 file: adds the sampler-strategy tag.
    pub const V3: &[u8] = include_bytes!("../fixtures/golden-v3.cldm");
    /// A v4 file: adds the sampler-resume flag.
    pub const V4: &[u8] = include_bytes!("../fixtures/golden-v4.cldm");

    /// Every golden file with its format version, oldest first.
    pub fn all() -> [(u32, &'static [u8]); 4] {
        [(1, V1), (2, V2), (3, V3), (4, V4)]
    }
}

#[cfg(test)]
mod golden_bless {
    //! Regeneration machinery for the committed golden checkpoint files in
    //! `fixtures/`.  The committed bytes are the contract — they must keep
    //! loading forever — so the bless test is `#[ignore]`d and only run by
    //! hand when a *new* historical version is frozen, never on format
    //! drift.

    use culda_core::{LdaConfig, ModelCheckpoint, SessionBuilder};
    use culda_gpusim::{DeviceSpec, MultiGpuSystem};

    /// The one standard model every golden file stores: sparse-CGS on the
    /// tiny fixture, K = 8, trained 3 iterations.
    pub fn golden_model() -> ModelCheckpoint {
        let corpus = crate::fixtures::tiny(crate::fixtures::FIXTURE_SEED);
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(8).seed(31))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 31))
            .build()
            .unwrap();
        trainer.train(3);
        ModelCheckpoint::from_trainer(&trainer)
    }

    /// Reconstruct the byte stream a version-`version` writer produced for
    /// [`golden_model`]: older formats are strict prefixes of the current
    /// stream (with the version stamp patched), because every format bump
    /// only ever appended trailing sections.
    pub fn synthesize(version: u32) -> Vec<u8> {
        let model = golden_model();
        match version {
            2..=5 => {
                let mut buf = Vec::new();
                model.write(&mut buf).unwrap();
                buf[4..8].copy_from_slice(&version.to_le_bytes());
                // v4 lacks nothing here (sparse strategy, no resume state);
                // v3 drops the resume flag; v2 drops the strategy tag too.
                if version == 3 {
                    buf.truncate(buf.len() - 1);
                }
                if version == 2 {
                    buf.truncate(buf.len() - 2);
                }
                buf
            }
            1 => {
                // v1 ends after θ: no z section (flag + iterations + seed =
                // 17 bytes when z is absent), no strategy tag, no flag.
                let mut headless = golden_model();
                headless.z = None;
                let mut buf = Vec::new();
                headless.write(&mut buf).unwrap();
                buf[4..8].copy_from_slice(&1u32.to_le_bytes());
                buf.truncate(buf.len() - 19);
                buf
            }
            other => panic!("no golden fixture recipe for version {other}"),
        }
    }

    #[test]
    #[ignore = "regenerates the committed golden fixtures in fixtures/"]
    fn bless_golden_fixtures() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        std::fs::create_dir_all(&dir).unwrap();
        for version in 1..=4u32 {
            let path = dir.join(format!("golden-v{version}.cldm"));
            std::fs::write(&path, synthesize(version)).unwrap();
            eprintln!("blessed {}", path.display());
        }
    }

    #[test]
    fn committed_fixtures_match_the_recipe() {
        // If this fails, either the current writer changed the byte layout
        // of a *historical* section (a back-compat break — fix the writer)
        // or a new trailing section was appended (update `synthesize`'s
        // truncation offsets; the committed files themselves must NOT be
        // re-blessed).
        for (version, bytes) in crate::golden::all() {
            assert_eq!(
                synthesize(version),
                bytes,
                "golden v{version} fixture no longer matches the writer-derived recipe"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::conformance::{check_invariants, check_loglik_trajectory};
    use super::*;
    use culda_baselines::CpuCgs;

    #[test]
    fn fixtures_are_reproducible() {
        let a = fixtures::small(fixtures::FIXTURE_SEED);
        let b = fixtures::small(fixtures::FIXTURE_SEED);
        assert_eq!(a.num_tokens(), b.num_tokens());
        for d in 0..a.num_docs() {
            assert_eq!(a.doc(d), b.doc(d));
        }
        let c = fixtures::small(fixtures::FIXTURE_SEED + 1);
        assert_ne!(
            (0..a.num_docs())
                .map(|d| a.doc(d).to_vec())
                .collect::<Vec<_>>(),
            (0..c.num_docs())
                .map(|d| c.doc(d).to_vec())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn invariant_checker_accepts_a_fresh_exact_sampler() {
        let corpus = fixtures::tiny(3);
        let cgs = CpuCgs::with_paper_priors(&corpus, 4, 3);
        check_invariants(&cgs, &doc_lens(&corpus), 50.0 / 4.0, 0.01).unwrap();
    }

    #[test]
    fn invariant_checker_rejects_wrong_doc_lens() {
        let corpus = fixtures::tiny(3);
        let cgs = CpuCgs::with_paper_priors(&corpus, 4, 3);
        let mut lens = doc_lens(&corpus);
        lens[0] += 1;
        assert!(check_invariants(&cgs, &lens, 50.0 / 4.0, 0.01).is_err());
    }

    #[test]
    fn trajectory_checker_flags_collapse_and_non_improvement() {
        check_loglik_trajectory("good", &[-5.0, -4.5, -4.4, -4.45, -4.3]).unwrap();
        assert!(check_loglik_trajectory("flat", &[-4.0, -4.0]).is_err());
        assert!(check_loglik_trajectory("collapse", &[-5.0, -4.0, -4.5, -3.9]).is_err());
        assert!(check_loglik_trajectory("positive", &[1.0, 2.0]).is_err());
    }

    #[test]
    fn doc_batches_partition_the_corpus_in_order() {
        let corpus = fixtures::tiny(5);
        let all = fixtures::documents_of(&corpus);
        assert_eq!(all.len(), corpus.num_docs());
        for batches in [1usize, 2, 3, 7] {
            let split = fixtures::doc_batches(&corpus, batches);
            let rejoined: Vec<_> = split.iter().flatten().cloned().collect();
            assert_eq!(rejoined, all, "{batches} batches must rejoin losslessly");
        }
    }

    #[test]
    fn z_signature_is_sensitive_to_single_changes() {
        let corpus = fixtures::tiny(9);
        let a = CpuCgs::with_paper_priors(&corpus, 4, 7);
        let b = CpuCgs::with_paper_priors(&corpus, 4, 7);
        assert_eq!(determinism::z_signature(&a), determinism::z_signature(&b));
        let c = CpuCgs::with_paper_priors(&corpus, 4, 8);
        assert_ne!(determinism::z_signature(&a), determinism::z_signature(&c));
    }
}
